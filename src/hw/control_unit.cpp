#include "hw/control_unit.hpp"

#include <stdexcept>

#include "hw/bram.hpp"

namespace chambolle::hw {

ControlUnit::ControlUnit(const ArchConfig& config, int buf_rows, int buf_cols,
                         int iterations, int pe_latency)
    : config_(config),
      buf_rows_(buf_rows),
      buf_cols_(buf_cols),
      iterations_(iterations),
      pe_latency_(pe_latency) {
  config_.validate();
  if (buf_rows <= 0 || buf_rows > config.tile_rows || buf_cols <= 0 ||
      buf_cols > config.tile_cols)
    throw std::invalid_argument("ControlUnit: buffer exceeds tile");
  if (iterations <= 0) throw std::invalid_argument("ControlUnit: iterations");
  if (pe_latency < 1) throw std::invalid_argument("ControlUnit: latency");
  if (config_.pe_lanes - 1 + pe_latency > config_.pipeline_fill + 1)
    throw std::invalid_argument(
        "ControlUnit: skew + latency exceeds the sweep window; lower "
        "pe_latency or raise pipeline_fill");
  sweep_len_ = buf_cols_ + 1 + config_.pipeline_fill;
  build_plan();
  if (iterations_ == 0) done_ = true;
}

void ControlUnit::build_plan() {
  const int lanes = config_.pe_lanes;
  const int regions = (buf_rows_ + lanes - 1) / lanes;
  for (int g = 0; g < regions; ++g) {
    SweepPlan sweep;
    sweep.first_row = g * lanes;
    sweep.active = std::min(lanes, buf_rows_ - sweep.first_row);
    sweeps_.push_back(sweep);
  }
  SweepPlan flush;
  flush.first_row = buf_rows_ - 1;
  flush.active = 1;
  flush.is_flush = true;
  sweeps_.push_back(flush);
}

std::uint64_t ControlUnit::total_cycles() const {
  return static_cast<std::uint64_t>(iterations_) * sweeps_.size() *
         static_cast<std::uint64_t>(sweep_len_);
}

ControlSignals ControlUnit::signals_for(const SweepPlan& sweep,
                                        int local_cycle) const {
  ControlSignals out;
  out.row_start = local_cycle == 0;

  // Columns whose PE-T reads issue this cycle, per the ladder skew: lane i
  // reads column local_cycle - i while 0 <= column < buf_cols.
  if (sweep.is_flush) {
    const int row = sweep.first_row;
    const int col = local_cycle;
    if (col < buf_cols_) {
      BramAccess read;
      read.cycle = local_cycle;
      read.row = row;
      read.col = col;
      read.bram = bram_index_for_row(row, config_.num_brams);
      read.addr = bram_addr_for(row, col, config_.tile_cols, config_.num_brams);
      read.lane = 0;
      out.bram.push_back(read);
      out.term_bram_read = true;
      out.term_bram_read_addr = col;
    }
    const int wcol = local_cycle - pe_latency_;
    if (wcol >= 0 && wcol < buf_cols_) {
      BramAccess write;
      write.cycle = local_cycle;
      write.is_write = true;
      write.row = sweep.first_row;
      write.col = wcol;
      write.bram = bram_index_for_row(write.row, config_.num_brams);
      write.addr =
          bram_addr_for(write.row, wcol, config_.tile_cols, config_.num_brams);
      write.lane = 0;
      out.bram.push_back(write);
    }
    return out;
  }

  const bool has_above = sweep.first_row > 0;
  for (int i = 0; i < sweep.active; ++i) {
    const int col = local_cycle - i;
    if (col < 0 || col >= buf_cols_) continue;
    const int row = sweep.first_row + i;
    BramAccess read;
    read.cycle = local_cycle;
    read.row = row;
    read.col = col;
    read.lane = i;
    read.bram = bram_index_for_row(row, config_.num_brams);
    read.addr = bram_addr_for(row, col, config_.tile_cols, config_.num_brams);
    out.bram.push_back(read);
  }
  if (has_above && local_cycle < buf_cols_) {
    BramAccess read;
    read.cycle = local_cycle;
    read.row = sweep.first_row - 1;
    read.col = local_cycle;
    read.lane = -1;
    read.bram = bram_index_for_row(read.row, config_.num_brams);
    read.addr = bram_addr_for(read.row, local_cycle, config_.tile_cols,
                              config_.num_brams);
    out.bram.push_back(read);
    out.term_bram_read = true;
    out.term_bram_read_addr = local_cycle;
  }
  // The last active lane's Term stream enters BRAM-Term as it is produced.
  {
    const int col = local_cycle - (sweep.active - 1);
    if (col >= 0 && col < buf_cols_) {
      out.term_bram_write = true;
      out.term_bram_write_addr = col;
    }
  }
  // PE-V write-backs: lanes 0..active-2 retire rows first_row..+active-2,
  // pe_latency cycles behind their reads; the deferred row rides lane -1.
  for (int i = 0; i + 1 < sweep.active; ++i) {
    const int col = local_cycle - i - pe_latency_;
    if (col < 0 || col >= buf_cols_) continue;
    const int row = sweep.first_row + i;
    BramAccess write;
    write.cycle = local_cycle;
    write.is_write = true;
    write.row = row;
    write.col = col;
    write.lane = i;
    write.bram = bram_index_for_row(row, config_.num_brams);
    write.addr = bram_addr_for(row, col, config_.tile_cols, config_.num_brams);
    out.bram.push_back(write);
  }
  if (has_above) {
    const int col = local_cycle - pe_latency_;
    if (col >= 0 && col < buf_cols_) {
      BramAccess write;
      write.cycle = local_cycle;
      write.is_write = true;
      write.row = sweep.first_row - 1;
      write.col = col;
      write.lane = -1;
      write.bram = bram_index_for_row(write.row, config_.num_brams);
      write.addr = bram_addr_for(write.row, col, config_.tile_cols,
                                 config_.num_brams);
      out.bram.push_back(write);
    }
  }
  return out;
}

ControlSignals ControlUnit::step() {
  if (done_) {
    ControlSignals idle;
    idle.done = true;
    return idle;
  }
  ControlSignals out = signals_for(sweeps_[sweep_index_], local_cycle_);
  ++cycle_;
  ++local_cycle_;
  if (local_cycle_ >= sweep_len_) {
    local_cycle_ = 0;
    ++sweep_index_;
    if (sweep_index_ >= sweeps_.size()) {
      sweep_index_ = 0;
      ++iteration_;
      if (iteration_ >= iterations_) done_ = true;
    }
  }
  out.done = done_;
  return out;
}

}  // namespace chambolle::hw
