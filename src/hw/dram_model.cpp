#include "hw/dram_model.hpp"

#include "chambolle/tile.hpp"
#include "hw/accelerator.hpp"

namespace chambolle::hw {

TrafficReport estimate_traffic(const ArchConfig& arch, int rows, int cols,
                               int iterations, const DramConfig& dram) {
  arch.validate();
  dram.validate();

  const TilingPlan plan =
      make_tiling(rows, cols, arch.tile_rows, arch.tile_cols,
                  arch.merge_iterations);
  // Both flow components move as 32-bit packed (v, px, py) words.
  constexpr std::uint64_t kBytesPerElementPerComponent = 4;
  constexpr std::uint64_t kComponents = 2;

  const int passes =
      (iterations + arch.merge_iterations - 1) / arch.merge_iterations;

  TrafficReport report;
  report.bytes_loaded = static_cast<std::uint64_t>(passes) *
                        plan.total_buffer_elements() *
                        kBytesPerElementPerComponent * kComponents;
  report.bytes_stored = static_cast<std::uint64_t>(passes) *
                        plan.total_profitable_elements() *
                        kBytesPerElementPerComponent * kComponents;

  const ChambolleAccelerator accel(arch);
  report.compute_seconds =
      static_cast<double>(accel.estimate_frame_cycles(rows, cols, iterations)) /
      (arch.clock_mhz * 1e6);
  report.transfer_seconds =
      static_cast<double>(report.total_bytes()) / dram.bytes_per_second;
  return report;
}

}  // namespace chambolle::hw
