// dram_model.hpp — off-chip transfer volume and bandwidth-limited frame rate.
//
// Table II "assumed that the images to be processed are pre-loaded in the
// device memory, in order to focus the measures on the Chambolle algorithm
// itself."  This model quantifies what that assumption hides: every pass,
// each tile's packed words (32 bits per element per flow component) stream
// from device memory into the window BRAMs and the profitable rectangle
// streams back.  With double buffering the transfers overlap compute, so the
// achievable frame rate is min(compute-bound fps, bandwidth-bound fps); the
// ablation bench sweeps the available bandwidth to find where the knee sits.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "hw/device.hpp"

namespace chambolle::hw {

struct DramConfig {
  /// Usable bandwidth in bytes/second (e.g. a single 32-bit DDR2-400
  /// interface of the paper's era delivers ~1.6e9 with typical efficiency).
  double bytes_per_second = 1.6e9;

  void validate() const {
    if (bytes_per_second <= 0)
      throw std::invalid_argument("DramConfig: bandwidth <= 0");
  }
};

struct TrafficReport {
  std::uint64_t bytes_loaded = 0;  ///< per frame solve, all passes
  std::uint64_t bytes_stored = 0;
  double compute_seconds = 0.0;   ///< from the cycle model at the arch clock
  double transfer_seconds = 0.0;  ///< total bytes / bandwidth

  [[nodiscard]] std::uint64_t total_bytes() const {
    return bytes_loaded + bytes_stored;
  }
  /// Frame rate with transfers fully overlapped behind compute (double
  /// buffering): the slower of the two pipelines dominates.
  [[nodiscard]] double overlapped_fps() const {
    const double bound = compute_seconds > transfer_seconds
                             ? compute_seconds
                             : transfer_seconds;
    return bound > 0 ? 1.0 / bound : 0.0;
  }
  /// Frame rate with serialized load-compute-store phases.
  [[nodiscard]] double serialized_fps() const {
    const double total = compute_seconds + transfer_seconds;
    return total > 0 ? 1.0 / total : 0.0;
  }
  /// True when compute hides all transfers (the pre-loaded assumption is
  /// then performance-neutral).
  [[nodiscard]] bool compute_bound() const {
    return compute_seconds >= transfer_seconds;
  }
};

/// Estimates per-frame off-chip traffic and timing for the accelerator
/// schedule on a rows x cols frame.
[[nodiscard]] TrafficReport estimate_traffic(const ArchConfig& arch, int rows,
                                             int cols, int iterations,
                                             const DramConfig& dram);

}  // namespace chambolle::hw
