#include "hw/schedule.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "hw/bram.hpp"

namespace chambolle::hw {

RegionSchedule schedule_region(const ArchConfig& config, int r0,
                               int active_lanes, int cols, int pe_latency) {
  config.validate();
  if (r0 < 0 || active_lanes <= 0 || active_lanes > config.pe_lanes ||
      cols <= 0 || pe_latency < 1)
    throw std::invalid_argument("schedule_region: bad arguments");

  RegionSchedule sched;
  const bool has_above = r0 > 0;

  for (int c = 0; c < cols; ++c) {
    // Lane i processes column c at cycle c + i (the ladder skew); its packed
    // word read issues then.
    for (int i = 0; i < active_lanes; ++i) {
      const int row = r0 + i;
      BramAccess read;
      read.cycle = c + i;
      read.bram = bram_index_for_row(row, config.num_brams);
      read.addr = bram_addr_for(row, c, config.tile_cols, config.num_brams);
      read.is_write = false;
      read.lane = i;
      read.row = row;
      read.col = c;
      sched.accesses.push_back(read);
    }
    // The row-above helper read rides with lane 0 (it feeds both PE-T1's
    // a_py and the deferred PE-V1's old px/py).
    if (has_above) {
      BramAccess read;
      read.cycle = c;
      read.bram = bram_index_for_row(r0 - 1, config.num_brams);
      read.addr = bram_addr_for(r0 - 1, c, config.tile_cols, config.num_brams);
      read.is_write = false;
      read.lane = -1;
      read.row = r0 - 1;
      read.col = c;
      sched.accesses.push_back(read);
    }
    // PE-V write-backs: lanes 2..active update rows r0..r0+active-2, each
    // pe_latency cycles after the lane's read of the SAME column; the
    // deferred row (r0-1) writes with lane-0 timing.
    for (int i = 0; i + 1 < active_lanes; ++i) {
      const int row = r0 + i;
      BramAccess write;
      write.cycle = c + i + pe_latency;
      write.bram = bram_index_for_row(row, config.num_brams);
      write.addr = bram_addr_for(row, c, config.tile_cols, config.num_brams);
      write.is_write = true;
      write.lane = i;
      write.row = row;
      write.col = c;
      sched.accesses.push_back(write);
    }
    if (has_above) {
      BramAccess write;
      write.cycle = c + pe_latency;
      write.bram = bram_index_for_row(r0 - 1, config.num_brams);
      write.addr = bram_addr_for(r0 - 1, c, config.tile_cols, config.num_brams);
      write.is_write = true;
      write.lane = -1;
      write.row = r0 - 1;
      write.col = c;
      sched.accesses.push_back(write);
    }
  }

  sched.first_cycle = 0;
  sched.last_cycle = 0;
  for (const BramAccess& a : sched.accesses)
    sched.last_cycle = std::max(sched.last_cycle, a.cycle);
  return sched;
}

int count_port_conflicts(const RegionSchedule& schedule) {
  // (cycle, bram) -> (reads, writes)
  std::map<std::pair<int, int>, std::pair<int, int>> usage;
  for (const BramAccess& a : schedule.accesses) {
    auto& slot = usage[{a.cycle, a.bram}];
    if (a.is_write)
      ++slot.second;
    else
      ++slot.first;
  }
  int violations = 0;
  for (const auto& [key, counts] : usage) {
    (void)key;
    if (counts.first > 1) violations += counts.first - 1;
    if (counts.second > 1) violations += counts.second - 1;
  }
  return violations;
}

std::string render_timeline(const RegionSchedule& schedule, int max_cycles) {
  // One row per BRAM, one column per cycle; 'R' read, 'W' write, 'B' both.
  int max_bram = 0;
  for (const BramAccess& a : schedule.accesses)
    max_bram = std::max(max_bram, a.bram);
  const int cycles = std::min(schedule.last_cycle + 1, max_cycles);

  std::vector<std::string> rows(static_cast<std::size_t>(max_bram) + 1,
                                std::string(static_cast<std::size_t>(cycles),
                                            '.'));
  for (const BramAccess& a : schedule.accesses) {
    if (a.cycle >= cycles) continue;
    char& cell = rows[static_cast<std::size_t>(a.bram)]
                     [static_cast<std::size_t>(a.cycle)];
    const char mark = a.is_write ? 'W' : 'R';
    cell = (cell == '.' || cell == mark) ? mark : 'B';
  }

  std::ostringstream os;
  os << "cycle     ";
  for (int c = 0; c < cycles; ++c) os << (c % 10);
  os << '\n';
  for (int b = 0; b <= max_bram; ++b)
    os << "BRAM " << b << "    " << rows[static_cast<std::size_t>(b)] << '\n';
  return os.str();
}

}  // namespace chambolle::hw
