// control_unit.hpp — the CONTROL UNIT of Figures 2-3 as a cycle-stepped FSM.
//
// "all of them [BRAMs] are controlled by the control unit" — it sequences
// regions and columns, generates the read/write addresses for the 8 packed-
// word BRAMs and BRAM-Term, applies the vertical-rotator re-routing at
// region changes (+92 address offsets), counts down Niterations, and raises
// `done`.  PeArray models the data movement at column granularity; this FSM
// models the SEQUENCING at cycle granularity.  Consistency tests pin the two
// together: the FSM's per-region access stream equals schedule_region()'s,
// and its total cycle count equals the PeArray / analytic formula.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/device.hpp"
#include "hw/schedule.hpp"

namespace chambolle::hw {

/// Commands the control unit issues in one cycle.
struct ControlSignals {
  std::vector<BramAccess> bram;       ///< packed-word BRAM ops this cycle
  bool term_bram_read = false;        ///< BRAM-Term port A
  bool term_bram_write = false;       ///< BRAM-Term port B
  int term_bram_read_addr = 0;
  int term_bram_write_addr = 0;
  bool row_start = false;             ///< resets the lanes' l_px flip-flops
  bool done = false;                  ///< all iterations retired
};

/// FSM state: (iteration, phase, region, column-within-sweep).
class ControlUnit {
 public:
  /// Sequences `iterations` Chambolle iterations over a buf_rows x buf_cols
  /// tile.  `pe_latency` is the modeled write-back lag; the non-overlapped
  /// sweep model requires (pe_lanes - 1) + pe_latency <= pipeline_fill + 1
  /// so every sweep's last write retires inside its own window (in real
  /// hardware the drain overlaps the next sweep's fill, which the BRAM
  /// row-striping keeps conflict-free; the conservative model keeps the
  /// same total cycle count as PeArray).
  ControlUnit(const ArchConfig& config, int buf_rows, int buf_cols,
              int iterations, int pe_latency = 12);

  /// Advances one clock cycle and returns the signals for that cycle.
  ControlSignals step();

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] std::uint64_t cycles_elapsed() const { return cycle_; }

  /// Cycles one full run takes: iterations * (regions + flush) * sweep_len,
  /// where sweep_len = buf_cols + 1 + pipeline_fill — the same arithmetic as
  /// PeArray and ChambolleAccelerator::tile_cycles.
  [[nodiscard]] std::uint64_t total_cycles() const;

 private:
  struct SweepPlan {
    int first_row = 0;   ///< r0 of the region; -1 tags the flush sweep
    int active = 0;      ///< lanes participating
    bool is_flush = false;
  };

  void build_plan();
  [[nodiscard]] ControlSignals signals_for(const SweepPlan& sweep,
                                           int local_cycle) const;

  ArchConfig config_;
  int buf_rows_;
  int buf_cols_;
  int iterations_;
  int pe_latency_;
  int sweep_len_;  ///< cycles per sweep: buf_cols + 1 + pipeline_fill

  std::vector<SweepPlan> sweeps_;  ///< one iteration's sweep sequence
  std::uint64_t cycle_ = 0;
  int iteration_ = 0;
  std::size_t sweep_index_ = 0;
  int local_cycle_ = 0;
  bool done_ = false;
};

}  // namespace chambolle::hw
