#include "hw/pe_array.hpp"

#include <stdexcept>
#include <vector>

#include "hw/pe.hpp"

namespace chambolle::hw {
namespace {

std::int32_t as_term(std::uint32_t w) { return static_cast<std::int32_t>(w); }
std::uint32_t term_word(std::int32_t t) { return static_cast<std::uint32_t>(t); }

}  // namespace

PeArray::PeArray(const ArchConfig& config)
    : config_(config), term_bram_(config.tile_cols) {
  config_.validate();
}

void PeArray::run(BramBank& bank, int buf_rows, int buf_cols,
                  const RegionGeometry& geom, const FixedParams& params,
                  int iterations) {
  if (buf_rows <= 0 || buf_cols <= 0 || buf_rows > bank.tile_rows() ||
      buf_cols > bank.tile_cols())
    throw std::invalid_argument("PeArray::run: buffer exceeds bank");
  if (geom.row0 < 0 || geom.col0 < 0 ||
      geom.row0 + buf_rows > geom.frame_rows ||
      geom.col0 + buf_cols > geom.frame_cols)
    throw std::invalid_argument("PeArray::run: window exceeds frame");
  if (config_.functional_mode) {
    run_functional(bank, buf_rows, buf_cols, geom, params, iterations);
    return;
  }
  for (int it = 0; it < iterations; ++it)
    run_one_iteration(bank, buf_rows, buf_cols, geom, params);
}

void PeArray::run_functional(BramBank& bank, int buf_rows, int buf_cols,
                             const RegionGeometry& geom,
                             const FixedParams& params, int iterations) {
  // Stage the window out of the bank (uncounted: the charged statistics below
  // already account for every access the ladder would have made), run the
  // fixed-point software model — which dispatches to the SIMD kernel when
  // available — and write the result back.  fixed_iterate_region is the very
  // reference the "simulator == fixed solver" tests compare the ladder
  // against, so the functional result is bit-identical by that contract.
  FixedState st(buf_rows, buf_cols);
  for (int r = 0; r < buf_rows; ++r) {
    for (int c = 0; c < buf_cols; ++c) {
      const fx::BramFields w = bank.peek_fields(r, c);
      st.v(r, c) = w.v;
      st.px(r, c) = w.px;
      st.py(r, c) = w.py;
    }
  }
  Matrix<std::int32_t> scratch;
  fixed_iterate_region(st, geom, params, iterations, scratch);
  for (int r = 0; r < buf_rows; ++r)
    for (int c = 0; c < buf_cols; ++c)
      bank.load_fields(r, c, {st.v(r, c), st.px(r, c), st.py(r, c)});

  // Closed-form per-iteration statistics of run_one_iteration:
  //   * `regions` region sweeps plus the flush sweep, each W+1 column steps
  //     plus the pipeline fill;
  //   * BRAM-Term traffic: one write per column per region, one read per
  //     column per deferred sweep (regions-1 region sweeps with a row above,
  //     plus the flush) — both regions*W;
  //   * main-bank word reads: each region reads its `active` rows plus the
  //     row above when present -> (buf_rows + regions - 1)*W, plus W in the
  //     flush;
  //   * every element is written exactly once per iteration.
  const std::uint64_t W = static_cast<std::uint64_t>(buf_cols);
  const std::uint64_t rows = static_cast<std::uint64_t>(buf_rows);
  const std::uint64_t regions =
      (rows + static_cast<std::uint64_t>(config_.pe_lanes) - 1) /
      static_cast<std::uint64_t>(config_.pe_lanes);
  const std::uint64_t its = static_cast<std::uint64_t>(iterations);
  const std::uint64_t sweep =
      W + 1 + static_cast<std::uint64_t>(config_.pipeline_fill);
  stats_.cycles += its * (regions + 1) * sweep;
  stats_.term_bram_reads += its * regions * W;
  stats_.term_bram_writes += its * regions * W;
  stats_.bram_word_reads += its * (rows + regions) * W;
  stats_.bram_word_writes += its * rows * W;
  stats_.elements_updated += its * rows * W;
}

void PeArray::run_one_iteration(BramBank& bank, int buf_rows, int buf_cols,
                                const RegionGeometry& geom,
                                const FixedParams& params) {
  const int lanes = config_.pe_lanes;
  const int W = buf_cols;
  const int regions = (buf_rows + lanes - 1) / lanes;

  std::vector<PeT> pe_t(static_cast<std::size_t>(lanes));
  std::vector<std::int32_t> term_prev(static_cast<std::size_t>(lanes)),
      term_cur(static_cast<std::size_t>(lanes));
  std::vector<fx::BramFields> word_prev(static_cast<std::size_t>(lanes)),
      word_cur(static_cast<std::size_t>(lanes));

  for (int g = 0; g < regions; ++g) {
    const int r0 = g * lanes;
    const int active = std::min(lanes, buf_rows - r0);
    const bool has_above = r0 > 0;  // deferred PE-V1 row exists

    for (int i = 0; i < active; ++i) pe_t[static_cast<std::size_t>(i)].reset_row();
    fx::BramFields above_word_prev{}, above_word_cur{};
    std::int32_t term_above_prev = 0, term_above_cur = 0;

    // Column sweep; step c == W is the epilogue that retires column W-1.
    for (int c = 0; c <= W; ++c) {
      if (c < W) {
        const int ac = geom.col0 + c;
        const bool first_col = ac == 0;
        const bool last_col_t = ac == geom.frame_cols - 1;

        std::vector<int> rows_touched;
        if (has_above) {
          // One extra read serves both PE-T1's a_py and the old px/py the
          // deferred PE-V1 needs; BRAM-Term is read before it is rewritten
          // (dual-port read-first).
          term_above_cur = as_term(term_bram_.read(c));
          ++stats_.term_bram_reads;
          above_word_cur = bank.read_fields(r0 - 1, c);
          ++stats_.bram_word_reads;
          rows_touched.push_back(r0 - 1);
        }
        for (int i = 0; i < active; ++i) {
          word_cur[static_cast<std::size_t>(i)] = bank.read_fields(r0 + i, c);
          ++stats_.bram_word_reads;
          rows_touched.push_back(r0 + i);
        }
        bank.check_conflict_free(rows_touched);

        for (int i = 0; i < active; ++i) {
          const int af = geom.row0 + r0 + i;
          const std::int32_t a_py =
              i > 0 ? word_cur[static_cast<std::size_t>(i - 1)].py
                    : (has_above ? above_word_cur.py : 0);
          const PeT::Out out = pe_t[static_cast<std::size_t>(i)].step(
              word_cur[static_cast<std::size_t>(i)], a_py, first_col,
              last_col_t, af == 0, af == geom.frame_rows - 1, params);
          term_cur[static_cast<std::size_t>(i)] = out.term;
        }
        // The last active lane's Term stream bridges into the next region
        // (or the flush sweep) through BRAM-Term.
        term_bram_.write(c, term_word(term_cur[static_cast<std::size_t>(active - 1)]));
        ++stats_.term_bram_writes;
      }

      if (c >= 1) {
        const int ce = c - 1;
        const int ace = geom.col0 + ce;
        const bool last_col_v = ace == geom.frame_cols - 1 || c >= W;

        // PE-Vs 2..active: rows r0 .. r0+active-2, straight from PE-T regs.
        for (int i = 0; i + 1 < active; ++i) {
          const int row = r0 + i;
          const int af = geom.row0 + row;
          const std::int32_t r_term =
              c < W ? term_cur[static_cast<std::size_t>(i)] : 0;
          const fxdp::VOut out = PeV::compute(
              term_prev[static_cast<std::size_t>(i)], r_term,
              term_prev[static_cast<std::size_t>(i + 1)], last_col_v,
              af == geom.frame_rows - 1,
              word_prev[static_cast<std::size_t>(i)].px,
              word_prev[static_cast<std::size_t>(i)].py, params);
          bank.write_fields(row, ce,
                            {word_prev[static_cast<std::size_t>(i)].v, out.px,
                             out.py});
          ++stats_.bram_word_writes;
          ++stats_.elements_updated;
        }
        // Deferred PE-V1: retires the previous region's last row using the
        // BRAM-Term replay plus the freshly computed row-r0 Terms as b_term.
        if (has_above) {
          const int row = r0 - 1;
          const int af = geom.row0 + row;
          const std::int32_t r_term = c < W ? term_above_cur : 0;
          const fxdp::VOut out = PeV::compute(
              term_above_prev, r_term, term_prev[0], last_col_v,
              af == geom.frame_rows - 1, above_word_prev.px,
              above_word_prev.py, params);
          bank.write_fields(row, ce, {above_word_prev.v, out.px, out.py});
          ++stats_.bram_word_writes;
          ++stats_.elements_updated;
        }
      }

      term_prev = term_cur;
      word_prev = word_cur;
      term_above_prev = term_above_cur;
      above_word_prev = above_word_cur;
    }
    stats_.cycles += static_cast<std::uint64_t>(W + 1 + config_.pipeline_fill);
  }

  // Flush sweep: the tile's last row was deferred out of the final region;
  // replay its Terms from BRAM-Term.  ForwardY vanishes here by the border /
  // buffer-edge rule, so no b_term is needed.
  {
    const int row = buf_rows - 1;
    fx::BramFields word_prev_f{};
    std::int32_t term_prev_f = 0, term_cur_f = 0;
    fx::BramFields word_cur_f{};
    for (int c = 0; c <= W; ++c) {
      if (c < W) {
        term_cur_f = as_term(term_bram_.read(c));
        ++stats_.term_bram_reads;
        word_cur_f = bank.read_fields(row, c);
        ++stats_.bram_word_reads;
      }
      if (c >= 1) {
        const int ce = c - 1;
        const int ace = geom.col0 + ce;
        const bool last_col_v = ace == geom.frame_cols - 1 || c >= W;
        const std::int32_t r_term = c < W ? term_cur_f : 0;
        const fxdp::VOut out =
            PeV::compute(term_prev_f, r_term, /*b_term=*/0, last_col_v,
                         /*last_row=*/true, word_prev_f.px, word_prev_f.py,
                         params);
        bank.write_fields(row, ce, {word_prev_f.v, out.px, out.py});
        ++stats_.bram_word_writes;
        ++stats_.elements_updated;
      }
      term_prev_f = term_cur_f;
      word_prev_f = word_cur_f;
    }
    stats_.cycles += static_cast<std::uint64_t>(W + 1 + config_.pipeline_fill);
  }
}

}  // namespace chambolle::hw
