// pe_array.hpp — the ladder of 7 PE-Ts + 7 PE-Vs (Section V-A, Figures 4-5).
//
// A region is pe_lanes (7) consecutive tile rows.  Within a region the array
// sweeps columns left to right, one column per cycle in steady state:
//
//   * each PE-T lane reads its element's packed word from its BRAM (the
//     vertical rotator routes lane -> BRAM = row % 8);
//   * l_px comes from the lane's own flip-flop (previous column's c_px);
//   * a_py comes from the lane above (its c_py, one cycle delayed by the
//     ladder skew); the TOP lane instead reads the row-above word from the
//     8th BRAM — the same read also supplies the old px/py that the deferred
//     PE-V1 update of that row needs;
//   * PE-Vs 2..7 update rows r0..r0+5 one column behind the PE-Ts, consuming
//     c/r/b Term operands straight from the PE-T outputs and pipeline
//     registers — no BRAM access;
//   * the LAST lane's Term stream is written to BRAM-Term; PE-V1 replays it
//     in the NEXT region to update the previous region's last row (Section
//     V-B: "the Term values of row 6 are stored in a dual-port BRAM, and
//     they are read back when PE-T1 computes the Term values of row 7");
//   * after the last region a flush sweep updates the tile's final row.
//
// All writes trail the reads of the same row by at least one column, so every
// operand is a pre-iteration (Jacobi) value and the array's output is
// bit-identical to fixed_iterate_region — which the tests assert.
#pragma once

#include <cstdint>

#include "chambolle/fixed_solver.hpp"
#include "chambolle/solver.hpp"
#include "hw/bram.hpp"
#include "hw/device.hpp"

namespace chambolle::hw {

/// Access / cycle statistics of PE-array executions.
struct PeArrayStats {
  std::uint64_t cycles = 0;
  std::uint64_t elements_updated = 0;
  std::uint64_t bram_word_reads = 0;   ///< packed-word reads (main bank)
  std::uint64_t bram_word_writes = 0;  ///< packed-word writes (main bank)
  std::uint64_t term_bram_reads = 0;
  std::uint64_t term_bram_writes = 0;
};

/// One PE array: processes one flow component of one sliding window.
class PeArray {
 public:
  explicit PeArray(const ArchConfig& config);

  /// Runs `iterations` Chambolle iterations over the buf_rows x buf_cols tile
  /// held in `bank`.  `geom` places the buffer inside the frame (border
  /// rules).  Statistics accumulate across calls.
  void run(BramBank& bank, int buf_rows, int buf_cols,
           const RegionGeometry& geom, const FixedParams& params,
           int iterations);

  [[nodiscard]] const PeArrayStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  void run_one_iteration(BramBank& bank, int buf_rows, int buf_cols,
                         const RegionGeometry& geom,
                         const FixedParams& params);

  /// ArchConfig::functional_mode: the same tile computed by the fixed-point
  /// kernel (SIMD when available) with the ladder's statistics charged
  /// analytically — bit- and stat-identical to run_one_iteration.
  void run_functional(BramBank& bank, int buf_rows, int buf_cols,
                      const RegionGeometry& geom, const FixedParams& params,
                      int iterations);

  ArchConfig config_;
  Bram term_bram_;  ///< BRAM-Term: one Term word per column
  PeArrayStats stats_;
};

}  // namespace chambolle::hw
