// accelerator.hpp — the complete Chambolle accelerator (Figure 2).
//
// Two sliding-window engines process the frame's tiles concurrently, each
// updating both components of u.  The frame-level schedule mirrors the tiled
// CPU solver: iterations are merged in groups of ArchConfig::merge_iterations
// per tile residency, and the frame state ping-pongs between passes so all
// tiles of one pass observe the same pre-pass state.  The per-frame cycle
// count is the max over the two engines, pass by pass (they run in parallel).
//
// The simulator is numerically bit-identical to the software fixed-point
// solver (chambolle/fixed_solver.hpp) restricted to profitable elements, and
// its cycle counts are exactly reproduced by the analytic model in
// estimate_frame_cycles() — both facts are asserted by the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "chambolle/params.hpp"
#include "common/image.hpp"
#include "hw/sliding_window.hpp"

namespace chambolle::hw {

struct AcceleratorStats {
  std::uint64_t total_cycles = 0;
  std::uint64_t load_store_cycles = 0;
  std::uint64_t elements_updated = 0;   ///< across both components
  std::uint64_t bram_word_reads = 0;    ///< across all four PE arrays
  std::uint64_t bram_word_writes = 0;
  int passes = 0;
  std::size_t tiles_per_pass = 0;
  double tiling_redundancy = 0.0;  ///< replicated-work fraction of the plan

  [[nodiscard]] double seconds(double clock_mhz) const {
    return static_cast<double>(total_cycles) / (clock_mhz * 1e6);
  }
  [[nodiscard]] double fps(double clock_mhz) const {
    const double s = seconds(clock_mhz);
    return s > 0 ? 1.0 / s : 0.0;
  }
};

/// Optional warm start for ChambolleAccelerator::solve: initial dual state
/// for both components, quantized to the Q1.8 format on entry.  All four
/// pointers of a component must be set together and match the frame shape.
/// Video pipelines exploit temporal coherence this way: re-using the
/// previous frame's dual state cuts the iterations needed for equal quality.
struct AcceleratorInitialDual {
  const Matrix<float>* u1_px = nullptr;
  const Matrix<float>* u1_py = nullptr;
  const Matrix<float>* u2_px = nullptr;
  const Matrix<float>* u2_py = nullptr;
};

class ChambolleAccelerator {
 public:
  explicit ChambolleAccelerator(const ArchConfig& config = {});

  struct Result {
    FlowField u;             ///< dequantized output flow
    FlowField dual_u1;       ///< final (px, py) of component u1, dequantized
    FlowField dual_u2;       ///< final (px, py) of component u2, dequantized
    AcceleratorStats stats;
    double fps = 0.0;        ///< frames/second at the configured clock
  };

  using InitialDual = AcceleratorInitialDual;

  /// Runs the accelerator on the support fields v = (v1, v2) (Algorithm 1's
  /// input, produced by the TV-L1 thresholding step).
  [[nodiscard]] Result solve(const FlowField& v, const ChambolleParams& params,
                             const InitialDual& initial = InitialDual());

  /// Analytic cycle count for a rows x cols frame at the given iteration
  /// count — the same schedule arithmetic as the simulator, without data.
  [[nodiscard]] std::uint64_t estimate_frame_cycles(int rows, int cols,
                                                    int iterations) const;
  [[nodiscard]] double estimate_fps(int rows, int cols, int iterations) const;

  /// Cycle count when the iteration budget is spread across a TV-L1 pyramid:
  /// `iterations / levels` Chambolle iterations at each of `levels` scales
  /// (full resolution, 1/2, 1/4, ...).  The GPU baselines of Table II run
  /// the complete pyramidal TV-L1 scheme, so this is the interpretation of
  /// "Iterations" under which the paper's 99.1 fps figure is reachable from
  /// the stated 28-PE architecture (see EXPERIMENTS.md, experiment E2).
  [[nodiscard]] std::uint64_t estimate_pyramid_cycles(int rows, int cols,
                                                      int iterations,
                                                      int levels = 4) const;
  [[nodiscard]] double estimate_pyramid_fps(int rows, int cols, int iterations,
                                            int levels = 4) const;

  [[nodiscard]] const ArchConfig& config() const { return config_; }

 private:
  /// Cycles one engine spends on one tile processed for k iterations.
  [[nodiscard]] std::uint64_t tile_cycles(const TileSpec& tile, int k) const;

  ArchConfig config_;
};

}  // namespace chambolle::hw
