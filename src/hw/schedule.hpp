// schedule.hpp — explicit cycle timing of the ladder schedule (Figure 5).
//
// PeArray simulates the array at column-step granularity; this model spells
// out the per-cycle timing the paper describes, with the ladder SKEW made
// explicit: lane i runs one column (= one cycle) behind lane i-1, which is
// why "PE-T3 takes the l_px vector from the flip-flop that stores the c_px
// vector processed in previous cycle" and why the a_py forwarding crosses
// lanes with a single-cycle register.  The model generates every BRAM access
// of a region sweep with its issue cycle, and the checker proves the
// schedule honours the dual-port budget (at most one read and one write per
// BRAM per cycle) — the property the row-striping (rows mod 8) exists to
// guarantee.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/device.hpp"

namespace chambolle::hw {

/// One scheduled BRAM access.
struct BramAccess {
  int cycle = 0;
  int bram = 0;
  int addr = 0;
  bool is_write = false;
  int lane = -1;  ///< issuing PE lane; -1 for the row-above helper read
  int row = 0;    ///< tile row being accessed
  int col = 0;    ///< tile column being accessed
};

/// All accesses of one region sweep (rows r0 .. r0+active-1 over `cols`
/// columns), with the ladder skew applied.  `pe_latency` is the PE-array
/// depth (the paper's 15 stages): PE-V write-back of column c issues
/// pe_latency cycles after the corresponding PE-T read.
struct RegionSchedule {
  std::vector<BramAccess> accesses;
  int first_cycle = 0;
  int last_cycle = 0;

  /// Cycles from first issued read to last retired write.
  [[nodiscard]] int span() const { return last_cycle - first_cycle + 1; }
};

[[nodiscard]] RegionSchedule schedule_region(const ArchConfig& config, int r0,
                                             int active_lanes, int cols,
                                             int pe_latency = 15);

/// Port-conflict check: at most one read and one write per BRAM per cycle.
/// Returns the number of violations (0 for a correct schedule).
[[nodiscard]] int count_port_conflicts(const RegionSchedule& schedule);

/// Renders the first `max_cycles` cycles as an ASCII lane/BRAM timeline
/// (used by the hw_accelerator example for inspection).
[[nodiscard]] std::string render_timeline(const RegionSchedule& schedule,
                                          int max_cycles = 24);

}  // namespace chambolle::hw
