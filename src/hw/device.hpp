// device.hpp — target-device constants and architecture configuration.
//
// The paper targets a Xilinx Virtex-5 XC5VLX110T at 221 MHz post-P&R
// (Section VI, Table I).  ArchConfig captures every architectural parameter
// of Sections IV-V so the simulator, the cycle model and the resource model
// share one source of truth.
#pragma once

#include <stdexcept>

namespace chambolle::hw {

/// Resource totals of the XC5VLX110T (Table I, "Total" row).
struct Virtex5Spec {
  int flipflops = 69120;
  int luts = 69120;
  int brams = 128;
  int dsps = 64;
};

struct ArchConfig {
  /// Sliding-window tile dimensions (Section IV: 88 x 92; the row count must
  /// be a multiple of the BRAM count so rows stripe evenly across the 8
  /// BRAMs: 88 rows = 8 BRAMs x 11 rows of 92 words = 1012 addresses).
  int tile_rows = 88;
  int tile_cols = 92;
  /// PE-Ts (= PE-Vs) per array; a "region" is this many rows (Figure 4).
  int pe_lanes = 7;
  /// Row-striping factor: row r lives in BRAM r % num_brams (Figure 4).
  int num_brams = 8;
  /// Concurrent sliding windows, each with one PE array per flow component.
  int num_sliding_windows = 2;
  /// Chambolle iterations merged per tile residency (the loop-decomposition
  /// depth x of Section III-A); equals the sliding-window halo.
  int merge_iterations = 4;
  /// Element latency: 1 control + 1 BRAM synchronous read + 1 vertical
  /// rotator + 15 PE array stages (Section IV).
  int pipeline_fill = 18;
  /// Post-place-and-route clock (Section VI).
  double clock_mhz = 221.0;
  /// When true, tile load/store transfers are included in the cycle counts
  /// (the paper assumes frames pre-loaded in device memory, so this models
  /// only the on-chip BRAM initialization through the input pins).
  bool model_tile_io = true;
  /// When true, PeArray::run skips the cycle-level ladder and computes the
  /// tile with the (SIMD-dispatched) fixed-point kernel, charging the
  /// ladder's exact access/cycle statistics in closed form.  Bit- and
  /// stat-identical to cycle mode by the tests' contract — use it to run
  /// simulator-backed workloads at software speed.  Default off so the
  /// cycle-level schedule stays the exercised path.
  bool functional_mode = false;

  void validate() const {
    if (tile_rows <= 0 || tile_cols <= 0)
      throw std::invalid_argument("ArchConfig: empty tile");
    if (pe_lanes <= 0) throw std::invalid_argument("ArchConfig: pe_lanes");
    if (num_brams != pe_lanes + 1)
      throw std::invalid_argument(
          "ArchConfig: row striping requires num_brams == pe_lanes + 1 so a "
          "region plus the row above it touch distinct BRAMs");
    if (tile_rows % num_brams != 0)
      throw std::invalid_argument(
          "ArchConfig: the tile length (row count) must be a multiple of the "
          "BRAM count so rows stripe evenly (Section V-B: 88 = 8 * 11)");
    if (num_sliding_windows <= 0)
      throw std::invalid_argument("ArchConfig: num_sliding_windows");
    if (merge_iterations <= 0)
      throw std::invalid_argument("ArchConfig: merge_iterations");
    if (tile_rows <= 2 * merge_iterations ||
        tile_cols <= 2 * merge_iterations)
      throw std::invalid_argument("ArchConfig: tile must exceed 2*halo");
    if (pipeline_fill < 0) throw std::invalid_argument("ArchConfig: fill");
    if (clock_mhz <= 0) throw std::invalid_argument("ArchConfig: clock");
  }

  /// Words per BRAM for one tile: ceil(rows*cols / num_brams); 1012 for the
  /// paper's 88 x 92 tile ("indexed using 1012 addresses", Section V-B).
  [[nodiscard]] int bram_depth() const {
    return (tile_rows * tile_cols + num_brams - 1) / num_brams;
  }
};

}  // namespace chambolle::hw
