#include "grid/transfer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace chambolle::grid {

void restrict_half(const Matrix<float>& fine, Matrix<float>& coarse) {
  if (fine.rows() < 1 || fine.cols() < 1)
    throw std::invalid_argument("restrict_half: empty source");
  const int rows = coarse_extent(fine.rows());
  const int cols = coarse_extent(fine.cols());
  coarse.resize(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const int r0 = 2 * r, c0 = 2 * c;
      // Odd trailing edge: the clamp duplicates the last row/column, so the
      // boundary cell carries weight 1/2 (or 1 in the 1x1 corner) and the
      // weights still sum to exactly 1.  The summation order below is part
      // of the contract: it keeps restriction of a constant bit-exact AND
      // matches the pre-refactor tvl1::downsample2 bit for bit.
      const int r1 = std::min(r0 + 1, fine.rows() - 1);
      const int c1 = std::min(c0 + 1, fine.cols() - 1);
      coarse(r, c) = 0.25f * (fine(r0, c0) + fine(r0, c1) + fine(r1, c0) +
                              fine(r1, c1));
    }
}

Matrix<float> restrict_half(const Matrix<float>& fine) {
  Matrix<float> coarse;
  restrict_half(fine, coarse);
  return coarse;
}

void prolong_bilinear_into(const Matrix<float>& coarse, int rows, int cols,
                           Matrix<float>& fine) {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("prolong_bilinear_into: empty target");
  if (coarse.rows() < 1 || coarse.cols() < 1)
    throw std::invalid_argument("prolong_bilinear_into: empty source");
  fine.resize(rows, cols);
  const float sr =
      static_cast<float>(coarse.rows()) / static_cast<float>(rows);
  const float sc =
      static_cast<float>(coarse.cols()) / static_cast<float>(cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      // Sample at the source location of this target pixel's center.
      const float fr = (static_cast<float>(r) + 0.5f) * sr - 0.5f;
      const float fc = (static_cast<float>(c) + 0.5f) * sc - 0.5f;
      const int r0 = static_cast<int>(std::floor(fr));
      const int c0 = static_cast<int>(std::floor(fc));
      const float wr = fr - static_cast<float>(r0);
      const float wc = fc - static_cast<float>(c0);
      const auto sample = [&](int rr, int cc) {
        rr = std::clamp(rr, 0, coarse.rows() - 1);
        cc = std::clamp(cc, 0, coarse.cols() - 1);
        return coarse(rr, cc);
      };
      fine(r, c) =
          (1.f - wr) *
              ((1.f - wc) * sample(r0, c0) + wc * sample(r0, c0 + 1)) +
          wr * ((1.f - wc) * sample(r0 + 1, c0) + wc * sample(r0 + 1, c0 + 1));
    }
}

void prolong_nearest_into(const Matrix<float>& coarse, int rows, int cols,
                          Matrix<float>& fine) {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("prolong_nearest_into: empty target");
  if (coarse.rows() != coarse_extent(rows) ||
      coarse.cols() != coarse_extent(cols))
    throw std::invalid_argument(
        "prolong_nearest_into: coarse extents must be the ceil-half of the "
        "fine extents");
  fine.resize(rows, cols);
  for (int r = 0; r < rows; ++r) {
    const float* src = &coarse(r / 2, 0);
    float* dst = &fine(r, 0);
    for (int c = 0; c < cols; ++c) dst[c] = src[c / 2];
  }
}

void sub_into(const Matrix<float>& a, const Matrix<float>& b,
              Matrix<float>& out) {
  if (!a.same_shape(b))
    throw std::invalid_argument("sub_into: shape mismatch");
  // Resize only on a genuine shape change: Matrix::resize reinitializes the
  // storage even when the shape is unchanged, which would destroy `a` or `b`
  // in the (supported) aliased calls out == a / out == b.
  if (!out.same_shape(a)) out.resize(a.rows(), a.cols());
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data().data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
}

void add_scaled(Matrix<float>& dst, const Matrix<float>& src, float scale) {
  if (!dst.same_shape(src))
    throw std::invalid_argument("add_scaled: shape mismatch");
  float* pd = dst.data().data();
  const float* ps = src.data().data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) pd[i] += scale * ps[i];
}

}  // namespace chambolle::grid
