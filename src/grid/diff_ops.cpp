#include "grid/diff_ops.hpp"

#include <stdexcept>

namespace chambolle::grid {

Matrix<float> forward_x(const Matrix<float>& z) {
  Matrix<float> out(z.rows(), z.cols());
  for (int r = 0; r < z.rows(); ++r) {
    for (int c = 0; c + 1 < z.cols(); ++c) out(r, c) = z(r, c + 1) - z(r, c);
    if (z.cols() > 0) out(r, z.cols() - 1) = 0.f;
  }
  return out;
}

Matrix<float> forward_y(const Matrix<float>& z) {
  Matrix<float> out(z.rows(), z.cols());
  for (int r = 0; r + 1 < z.rows(); ++r)
    for (int c = 0; c < z.cols(); ++c) out(r, c) = z(r + 1, c) - z(r, c);
  if (z.rows() > 0)
    for (int c = 0; c < z.cols(); ++c) out(z.rows() - 1, c) = 0.f;
  return out;
}

Matrix<float> backward_x(const Matrix<float>& p) {
  Matrix<float> out(p.rows(), p.cols());
  const int last = p.cols() - 1;
  // A 1-wide axis has no gradient direction, so its adjoint is zero.
  if (last == 0) return out;
  for (int r = 0; r < p.rows(); ++r)
    for (int c = 0; c < p.cols(); ++c)
      out(r, c) = backward_diff(p(r, c), c > 0 ? p(r, c - 1) : 0.f, c == 0,
                                c == last);
  return out;
}

Matrix<float> backward_y(const Matrix<float>& p) {
  Matrix<float> out(p.rows(), p.cols());
  const int last = p.rows() - 1;
  if (last == 0) return out;
  for (int r = 0; r < p.rows(); ++r)
    for (int c = 0; c < p.cols(); ++c)
      out(r, c) = backward_diff(p(r, c), r > 0 ? p(r - 1, c) : 0.f, r == 0,
                                r == last);
  return out;
}

Matrix<float> divergence(const Matrix<float>& px, const Matrix<float>& py) {
  if (!px.same_shape(py)) throw std::invalid_argument("divergence: shape");
  Matrix<float> dx = backward_x(px);
  const Matrix<float> dy = backward_y(py);
  for (std::size_t i = 0; i < dx.size(); ++i) dx.data()[i] += dy.data()[i];
  return dx;
}

void divergence_into(const Matrix<float>& px, const Matrix<float>& py,
                     Matrix<float>& out) {
  if (!px.same_shape(py)) throw std::invalid_argument("divergence: shape");
  if (!out.same_shape(px)) out.resize(px.rows(), px.cols());
  const int rows = px.rows(), cols = px.cols();
  const int last_r = rows - 1, last_c = cols - 1;
  for (int r = 0; r < rows; ++r) {
    const float* x = px.data().data() + static_cast<std::size_t>(r) * cols;
    const float* y = py.data().data() + static_cast<std::size_t>(r) * cols;
    const float* yu = r > 0 ? y - cols : nullptr;
    float* o = out.data().data() + static_cast<std::size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) {
      // Same one-sided Chambolle boundary rules as backward_x/backward_y; a
      // 1-wide axis contributes zero (no gradient direction to adjoint).
      float d = 0.f;
      if (last_c > 0)
        d += backward_diff(x[c], c > 0 ? x[c - 1] : 0.f, c == 0, c == last_c);
      if (last_r > 0)
        d += backward_diff(y[c], yu ? yu[c] : 0.f, r == 0, r == last_r);
      o[c] = d;
    }
  }
}

double dot(const Matrix<float>& a, const Matrix<float>& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("dot: shape");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s += static_cast<double>(a.data()[i]) * static_cast<double>(b.data()[i]);
  return s;
}

}  // namespace chambolle::grid
