#include "grid/diff_ops.hpp"

#include <stdexcept>

namespace chambolle::grid {

Matrix<float> forward_x(const Matrix<float>& z) {
  Matrix<float> out(z.rows(), z.cols());
  for (int r = 0; r < z.rows(); ++r) {
    for (int c = 0; c + 1 < z.cols(); ++c) out(r, c) = z(r, c + 1) - z(r, c);
    if (z.cols() > 0) out(r, z.cols() - 1) = 0.f;
  }
  return out;
}

Matrix<float> forward_y(const Matrix<float>& z) {
  Matrix<float> out(z.rows(), z.cols());
  for (int r = 0; r + 1 < z.rows(); ++r)
    for (int c = 0; c < z.cols(); ++c) out(r, c) = z(r + 1, c) - z(r, c);
  if (z.rows() > 0)
    for (int c = 0; c < z.cols(); ++c) out(z.rows() - 1, c) = 0.f;
  return out;
}

Matrix<float> backward_x(const Matrix<float>& p) {
  Matrix<float> out(p.rows(), p.cols());
  const int last = p.cols() - 1;
  // A 1-wide axis has no gradient direction, so its adjoint is zero.
  if (last == 0) return out;
  for (int r = 0; r < p.rows(); ++r)
    for (int c = 0; c < p.cols(); ++c)
      out(r, c) = backward_diff(p(r, c), c > 0 ? p(r, c - 1) : 0.f, c == 0,
                                c == last);
  return out;
}

Matrix<float> backward_y(const Matrix<float>& p) {
  Matrix<float> out(p.rows(), p.cols());
  const int last = p.rows() - 1;
  if (last == 0) return out;
  for (int r = 0; r < p.rows(); ++r)
    for (int c = 0; c < p.cols(); ++c)
      out(r, c) = backward_diff(p(r, c), r > 0 ? p(r - 1, c) : 0.f, r == 0,
                                r == last);
  return out;
}

Matrix<float> divergence(const Matrix<float>& px, const Matrix<float>& py) {
  if (!px.same_shape(py)) throw std::invalid_argument("divergence: shape");
  Matrix<float> dx = backward_x(px);
  const Matrix<float> dy = backward_y(py);
  for (std::size_t i = 0; i < dx.size(); ++i) dx.data()[i] += dy.data()[i];
  return dx;
}

double dot(const Matrix<float>& a, const Matrix<float>& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("dot: shape");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s += static_cast<double>(a.data()[i]) * static_cast<double>(b.data()[i]);
  return s;
}

}  // namespace chambolle::grid
