// transfer.hpp — shared inter-grid transfer operators (restrict / prolong /
// residual helpers).
//
// Two subsystems move fields between resolutions: the TV-L1 coarse-to-fine
// pyramid (tvl1/pyramid.hpp) and the resident-tile engine's coarse-grid
// correction (chambolle/multilevel.hpp).  Both used to carry private copies
// of the same 2x2-box restriction and bilinear prolongation; this module is
// the single shared definition, with the boundary convention for
// non-divisible extents made explicit and test-pinned
// (tests/grid_transfer_test.cpp).
//
// Grid convention (cell-centered, ceil-halving):
//
//  * A fine grid of extent n restricts to a coarse grid of extent
//    coarse_extent(n) = (n + 1) / 2 — every fine cell is covered, including
//    the trailing row/column of odd extents.
//  * Coarse cell (R, C) averages the 2x2 fine block starting at
//    (2R, 2C); on an odd trailing edge the out-of-range fine index is
//    CLAMPED to the last row/column, i.e. the single boundary cell is
//    counted twice (its weight collapses from 1/4 + 1/4 to 1/2).  The
//    weights always sum to exactly 1, so the restriction of a constant
//    field is that constant BIT-EXACTLY (the summation order below makes
//    this an IEEE identity, not an approximation — pinned by test).
//  * The convention needs no minimum extent: it is exact down to 1x1,
//    where restriction degenerates to the identity.  Levels below a
//    caller's min_dim policy are a policy choice, not an operator limit.
//
// Two prolongations are provided:
//
//  * prolong_bilinear_into — cell-centered bilinear interpolation to an
//    arbitrary target extent (edge-clamped).  Smooth; the choice for
//    interpolating corrections and flow fields.  NOT a right inverse of
//    restrict_half (box-averaging a bilinear interpolant re-weights
//    neighbors).
//  * prolong_nearest_into — piecewise-constant 2x injection (fine cell
//    (r, c) copies coarse cell (r/2, c/2)).  Blocky, but satisfies the
//    exact round-trip identity restrict_half(prolong_nearest(C)) == C for
//    every extent pair with rows == coarse_extent(fine_rows) — the
//    invariant multigrid transfer analysis assumes, pinned by test.
#pragma once

#include "common/matrix.hpp"

namespace chambolle::grid {

/// Coarse extent of a ceil-halved fine extent (covers every fine cell).
[[nodiscard]] constexpr int coarse_extent(int fine) { return (fine + 1) / 2; }

/// 2x2 box restriction with the clamped odd-edge convention above, into a
/// caller-provided coarse matrix (resized to ceil-half extents).  Arithmetic
/// is bit-identical to the pre-refactor tvl1::downsample2 — the rebased
/// pyramid reproduces its historical output exactly.
void restrict_half(const Matrix<float>& fine, Matrix<float>& coarse);

/// Convenience value-returning form of restrict_half.
[[nodiscard]] Matrix<float> restrict_half(const Matrix<float>& fine);

/// Cell-centered bilinear interpolation to an exact (rows, cols) target,
/// edge-clamped, into a caller-provided matrix (resized as needed).
/// Arithmetic is bit-identical to the pre-refactor tvl1::upsample_to.
/// Throws std::invalid_argument for an empty target or source.
void prolong_bilinear_into(const Matrix<float>& coarse, int rows, int cols,
                           Matrix<float>& fine);

/// Piecewise-constant 2x injection: fine(r, c) = coarse(r / 2, c / 2).
/// Requires coarse extents == coarse_extent of the fine extents (throws
/// otherwise); satisfies restrict_half(prolong_nearest(C)) == C bit-exactly.
void prolong_nearest_into(const Matrix<float>& coarse, int rows, int cols,
                          Matrix<float>& fine);

/// out = a - b elementwise (shape-checked; out resized as needed) — the
/// correction/residual delta between two same-grid fields.  `out` may alias
/// `a` or `b`; the aliased forms compute in place.
void sub_into(const Matrix<float>& a, const Matrix<float>& b,
              Matrix<float>& out);

/// dst += scale * src elementwise (shape-checked).
void add_scaled(Matrix<float>& dst, const Matrix<float>& src, float scale);

}  // namespace chambolle::grid
