// diff_ops.hpp — discrete gradient / divergence operators of Algorithm 1.
//
// The paper defines (Section II-A):
//   BackwardX(z): each element reduced by its left  neighbor,
//   BackwardY(z): each element reduced by its upper neighbor,
//   ForwardX(z):  difference toward the right neighbor,
//   ForwardY(z):  difference toward the lower neighbor,
// with the frame border treated as a special case ("the algorithm inherently
// treats them as special cases", Section III-A).  We use the standard
// Chambolle (2004) discretization, for which forward differences vanish on the
// far border and the backward (divergence) operator uses one-sided values on
// the near/far borders.  This makes (gradient, -divergence) an adjoint pair —
// the property the dual algorithm needs and which the tests verify.
//
// Index convention: (r, c) = (row, column); X differences act along columns
// (horizontal), Y differences along rows (vertical).
#pragma once

#include "common/matrix.hpp"

namespace chambolle::grid {

/// ForwardX(z)(r,c) = z(r,c+1) - z(r,c); 0 in the last column.
[[nodiscard]] Matrix<float> forward_x(const Matrix<float>& z);

/// ForwardY(z)(r,c) = z(r+1,c) - z(r,c); 0 in the last row.
[[nodiscard]] Matrix<float> forward_y(const Matrix<float>& z);

/// BackwardX with Chambolle divergence boundary rules:
///   c == 0:        p(r,0)
///   0 < c < W-1:   p(r,c) - p(r,c-1)
///   c == W-1:      -p(r,c-1)
[[nodiscard]] Matrix<float> backward_x(const Matrix<float>& p);

/// BackwardY with Chambolle divergence boundary rules (rows instead of cols).
[[nodiscard]] Matrix<float> backward_y(const Matrix<float>& p);

/// div p = BackwardX(px) + BackwardY(py)  (Algorithm 1, line 2).
[[nodiscard]] Matrix<float> divergence(const Matrix<float>& px,
                                       const Matrix<float>& py);

/// divergence() into a caller-provided output (resized on shape change) —
/// the steady-state-allocation-free form the multilevel corrector runs every
/// rendezvous.  `out` must not alias px or py.
void divergence_into(const Matrix<float>& px, const Matrix<float>& py,
                     Matrix<float>& out);

/// Pointwise scalar versions used by the per-element solvers (tiled CPU solver
/// and the hardware datapath reference).  `left`, `up` are the neighbor values
/// of p; the boundary flags select the one-sided Chambolle rules.
[[nodiscard]] inline float backward_diff(float center, float neighbor,
                                         bool at_first, bool at_last) {
  if (at_first) return center;
  if (at_last) return -neighbor;
  return center - neighbor;
}

/// Sum over the grid of a(r,c) * b(r,c) — the inner product used by the
/// adjointness property test.
[[nodiscard]] double dot(const Matrix<float>& a, const Matrix<float>& b);

}  // namespace chambolle::grid
