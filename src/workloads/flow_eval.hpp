// flow_eval.hpp — detailed flow-error statistics beyond the mean.
//
// Middlebury-style robustness measures: the fraction of pixels whose
// endpoint error exceeds 0.5 / 1.0 / 2.0 px (RX), error percentiles, and a
// coarse histogram.  Averages hide exactly the failure modes the paper's
// motivation cares about (motion boundaries, noise); these don't.
#pragma once

#include <array>
#include <vector>

#include "common/image.hpp"

namespace chambolle::workloads {

struct FlowErrorStats {
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;   ///< 90th percentile endpoint error
  double p99 = 0.0;
  double max = 0.0;
  double r05 = 0.0;   ///< fraction of pixels with error > 0.5 px
  double r10 = 0.0;   ///< > 1.0 px
  double r20 = 0.0;   ///< > 2.0 px
  long long pixels = 0;

  /// 16-bin histogram of endpoint errors over [0, 4) px (last bin catches
  /// everything above).
  std::array<long long, 16> histogram{};
};

/// Computes the statistics over the interior (margin cropped on each side).
[[nodiscard]] FlowErrorStats evaluate_flow(const FlowField& estimate,
                                           const FlowField& truth,
                                           int margin = 0);

/// Renders the histogram as a one-line ASCII sparkline (for bench output).
[[nodiscard]] std::string histogram_sparkline(const FlowErrorStats& stats);

}  // namespace chambolle::workloads
