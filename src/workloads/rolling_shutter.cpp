#include "workloads/rolling_shutter.hpp"

#include <cmath>
#include <stdexcept>

#include "tvl1/warp.hpp"

namespace chambolle::workloads {

Image rolling_shutter_capture(const Image& scene, float vel_x, float vel_y) {
  if (scene.rows() < 1) throw std::invalid_argument("rolling_shutter_capture");
  Image out(scene.rows(), scene.cols());
  const float inv_rows = 1.f / static_cast<float>(scene.rows());
  for (int r = 0; r < scene.rows(); ++r) {
    const float t = static_cast<float>(r) * inv_rows;  // exposure instant
    for (int c = 0; c < scene.cols(); ++c)
      // The scene content has moved by +velocity*t when row r is exposed, so
      // the sensor samples the original scene at position - velocity*t.
      out(r, c) = tvl1::sample_bilinear(scene, static_cast<float>(r) - vel_y * t,
                                        static_cast<float>(c) - vel_x * t);
  }
  return out;
}

Image rolling_shutter_correct(const Image& captured, const FlowField& flow) {
  if (flow.rows() != captured.rows() || flow.cols() != captured.cols())
    throw std::invalid_argument("rolling_shutter_correct: shape mismatch");
  Image out(captured.rows(), captured.cols());
  const float inv_rows = 1.f / static_cast<float>(captured.rows());
  for (int r = 0; r < captured.rows(); ++r) {
    const float t = static_cast<float>(r) * inv_rows;
    for (int c = 0; c < captured.cols(); ++c)
      // The pixel was exposed `t` of a frame late; the flow tells how far the
      // scene moved per frame, so walking t*flow along the motion recovers
      // the global-shutter sample.
      out(r, c) = tvl1::sample_bilinear(
          captured, static_cast<float>(r) + flow.u2(r, c) * t,
          static_cast<float>(c) + flow.u1(r, c) * t);
  }
  return out;
}

double mean_row_shift(const Image& img, const Image& reference) {
  if (!img.same_shape(reference))
    throw std::invalid_argument("mean_row_shift: shape mismatch");
  // Per row, find the integer column shift minimizing the SAD against the
  // reference row, then average the |shift| over all rows.
  const int max_shift = std::min(16, img.cols() / 4);
  double total = 0.0;
  for (int r = 0; r < img.rows(); ++r) {
    int best_shift = 0;
    double best_sad = -1.0;
    for (int s = -max_shift; s <= max_shift; ++s) {
      double sad = 0.0;
      for (int c = max_shift; c < img.cols() - max_shift; ++c)
        sad += std::abs(static_cast<double>(img(r, c)) - reference(r, c + s));
      if (best_sad < 0 || sad < best_sad) {
        best_sad = sad;
        best_shift = s;
      }
    }
    total += std::abs(best_shift);
  }
  return img.rows() > 0 ? total / img.rows() : 0.0;
}

}  // namespace chambolle::workloads
