// sequence.hpp — multi-frame synthetic video generation.
//
// The paper's headline metric is FRAMES per second; a frame-pair generator
// only exercises one solve.  This module renders N-frame sequences under a
// time-parametrized motion model (constant pan, rotation about the center,
// or zoom), with per-pair analytic ground truth, so video-rate pipelines can
// be driven and their per-frame accuracy tracked over time.
#pragma once

#include <vector>

#include "common/image.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle::workloads {

enum class MotionKind { kPan, kRotate, kZoom };

struct SequenceParams {
  MotionKind kind = MotionKind::kPan;
  int frames = 8;
  /// Per-frame motion magnitude: pixels for pan (applied to both axes
  /// scaled by direction), radians for rotate, scale factor for zoom.
  float rate_x = 1.5f;  ///< pan only: horizontal pixels/frame
  float rate_y = 0.5f;  ///< pan only: vertical pixels/frame
  float rate = 0.02f;   ///< rotate: rad/frame; zoom: (scale-1)/frame
  std::uint64_t seed = 42;

  void validate() const;
};

/// A generated sequence: frames[k] is the scene at time k; truth[k] is the
/// ground-truth flow from frames[k] to frames[k+1] (size frames-1).
struct VideoSequence {
  std::vector<Image> frames;
  std::vector<FlowField> truth;
};

/// Renders the sequence analytically (every frame sampled from the
/// continuous texture, so no resampling error accumulates across frames).
[[nodiscard]] VideoSequence make_sequence(int rows, int cols,
                                          const SequenceParams& params);

}  // namespace chambolle::workloads
