// rolling_shutter.hpp — the rolling-shutter correction application the
// paper's introduction motivates (Section I, ref [6]).
//
// A rolling-shutter sensor exposes rows at successive times; under camera
// motion, row r of the captured frame samples the scene at time r/rows of
// the frame interval, producing the familiar skew/wobble.  Given the optical
// flow between two frames, each row can be re-sampled back to a common
// exposure instant.
#pragma once

#include "common/image.hpp"

namespace chambolle::workloads {

/// Simulates a rolling-shutter capture of a scene translating at a constant
/// velocity (pixels/frame).  Row r of the output samples the scene displaced
/// by velocity * (r / rows).
[[nodiscard]] Image rolling_shutter_capture(const Image& scene, float vel_x,
                                            float vel_y);

/// Corrects a rolling-shutter frame given the per-pixel inter-frame flow:
/// row r is shifted back by flow * (r / rows), undoing the skew (to first
/// order in the motion).
[[nodiscard]] Image rolling_shutter_correct(const Image& captured,
                                            const FlowField& flow);

/// The mean absolute horizontal skew of an image of vertical edges: a simple
/// distortion score used to verify that correction reduces the artifact.
[[nodiscard]] double mean_row_shift(const Image& img, const Image& reference);

}  // namespace chambolle::workloads
