#include "workloads/synthetic.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace chambolle::workloads {
namespace {

constexpr float kTwoPi = 6.28318530717958647692f;

struct Wave {
  float fr, fc, phase, amp;
};

std::vector<Wave> make_waves(std::uint64_t seed, int components) {
  Rng rng(seed);
  std::vector<Wave> waves;
  waves.reserve(static_cast<std::size_t>(components));
  for (int i = 0; i < components; ++i) {
    Wave w{};
    // Low spatial frequencies: wavelengths of roughly 12-80 pixels.
    w.fr = rng.uniform(-0.08f, 0.08f);
    w.fc = rng.uniform(-0.08f, 0.08f);
    w.phase = rng.uniform(0.f, kTwoPi);
    w.amp = rng.uniform(10.f, 30.f);
    waves.push_back(w);
  }
  return waves;
}

float eval_waves(const std::vector<Wave>& waves, float r, float c) {
  float v = 128.f;
  for (const Wave& w : waves)
    v += w.amp * std::sin(kTwoPi * (w.fr * r + w.fc * c) + w.phase);
  return v;
}

// Renders the analytic texture sampled at inverse-mapped coordinates.
Image render(const std::vector<Wave>& waves, int rows, int cols,
             float (*map_r)(float, float, const float*),
             float (*map_c)(float, float, const float*), const float* args) {
  Image img(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const float fr = static_cast<float>(r), fc = static_cast<float>(c);
      img(r, c) = eval_waves(waves, map_r(fr, fc, args), map_c(fr, fc, args));
    }
  return img;
}

float id_r(float r, float, const float*) { return r; }
float id_c(float, float c, const float*) { return c; }

}  // namespace

Image smooth_texture(int rows, int cols, std::uint64_t seed, int components) {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("smooth_texture: empty image");
  return render(make_waves(seed, components), rows, cols, id_r, id_c,
                nullptr);
}

FlowWorkload translating_scene(int rows, int cols, float dx, float dy,
                               std::uint64_t seed) {
  const std::vector<Wave> waves = make_waves(seed, 6);
  FlowWorkload wl;
  wl.frame0 = render(waves, rows, cols, id_r, id_c, nullptr);
  const float args[2] = {dy, dx};
  wl.frame1 = render(
      waves, rows, cols,
      [](float r, float, const float* a) { return r - a[0]; },
      [](float, float c, const float* a) { return c - a[1]; }, args);
  wl.ground_truth = FlowField(rows, cols);
  wl.ground_truth.fill(dx, dy);
  return wl;
}

FlowWorkload rotating_scene(int rows, int cols, float radians,
                            std::uint64_t seed) {
  const std::vector<Wave> waves = make_waves(seed, 6);
  const float cr = static_cast<float>(rows - 1) / 2.f;
  const float cc = static_cast<float>(cols - 1) / 2.f;
  const float args[4] = {cr, cc, std::cos(radians), std::sin(radians)};
  FlowWorkload wl;
  wl.frame0 = render(waves, rows, cols, id_r, id_c, nullptr);
  // frame1(x) = frame0(R^{-1} (x - center) + center)
  wl.frame1 = render(
      waves, rows, cols,
      [](float r, float c, const float* a) {
        return a[0] + (-(c - a[1]) * a[3] + (r - a[0]) * a[2]);
      },
      [](float r, float c, const float* a) {
        return a[1] + ((c - a[1]) * a[2] + (r - a[0]) * a[3]);
      },
      args);
  wl.ground_truth = FlowField(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const float y = static_cast<float>(r) - cr;
      const float x = static_cast<float>(c) - cc;
      // Forward motion of the point over one frame.
      wl.ground_truth.u1(r, c) = x * std::cos(radians) - y * std::sin(radians) - x;
      wl.ground_truth.u2(r, c) = x * std::sin(radians) + y * std::cos(radians) - y;
    }
  return wl;
}

FlowWorkload zooming_scene(int rows, int cols, float scale,
                           std::uint64_t seed) {
  if (scale <= 0.f) throw std::invalid_argument("zooming_scene: scale <= 0");
  const std::vector<Wave> waves = make_waves(seed, 6);
  const float cr = static_cast<float>(rows - 1) / 2.f;
  const float cc = static_cast<float>(cols - 1) / 2.f;
  const float args[3] = {cr, cc, 1.f / scale};
  FlowWorkload wl;
  wl.frame0 = render(waves, rows, cols, id_r, id_c, nullptr);
  wl.frame1 = render(
      waves, rows, cols,
      [](float r, float, const float* a) { return a[0] + (r - a[0]) * a[2]; },
      [](float, float c, const float* a) { return a[1] + (c - a[1]) * a[2]; },
      args);
  wl.ground_truth = FlowField(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      wl.ground_truth.u1(r, c) = (static_cast<float>(c) - cc) * (scale - 1.f);
      wl.ground_truth.u2(r, c) = (static_cast<float>(r) - cr) * (scale - 1.f);
    }
  return wl;
}

FlowWorkload moving_square(int rows, int cols, int square, int dx, int dy) {
  if (square <= 0 || square >= std::min(rows, cols))
    throw std::invalid_argument("moving_square: bad square size");
  FlowWorkload wl;
  wl.frame0 = Image(rows, cols, 40.f);
  wl.frame1 = Image(rows, cols, 40.f);
  wl.ground_truth = FlowField(rows, cols);
  const int r0 = (rows - square) / 2 - dy / 2;
  const int c0 = (cols - square) / 2 - dx / 2;
  for (int r = 0; r < square; ++r)
    for (int c = 0; c < square; ++c) {
      if (wl.frame0.in_bounds(r0 + r, c0 + c)) {
        wl.frame0(r0 + r, c0 + c) = 220.f;
        wl.ground_truth.u1(r0 + r, c0 + c) = static_cast<float>(dx);
        wl.ground_truth.u2(r0 + r, c0 + c) = static_cast<float>(dy);
      }
      if (wl.frame1.in_bounds(r0 + r + dy, c0 + c + dx))
        wl.frame1(r0 + r + dy, c0 + c + dx) = 220.f;
    }
  return wl;
}

void corrupt(FlowWorkload& wl, float noise_stddev, std::uint64_t seed) {
  Rng rng(seed);
  add_gaussian_noise(rng, wl.frame0, noise_stddev);
  add_gaussian_noise(rng, wl.frame1, noise_stddev);
}

}  // namespace chambolle::workloads
