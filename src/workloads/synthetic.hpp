// synthetic.hpp — workload generators with analytic ground-truth flow.
//
// The paper evaluates on generic video frames; for a quantitative
// reproduction we generate frame pairs whose true optical flow is known in
// closed form (global translation, rotation, zoom) over smooth textured
// patterns, so the end-to-end TV-L1 accuracy of every solver backend can be
// asserted, not just eyeballed.
#pragma once

#include "common/image.hpp"
#include "common/rng.hpp"

namespace chambolle::workloads {

/// Smooth band-limited texture: a sum of a few low-frequency sinusoids plus
/// optional noise — differentiable everywhere so bilinear warping is accurate.
[[nodiscard]] Image smooth_texture(int rows, int cols,
                                   std::uint64_t seed = 42,
                                   int components = 6);

/// A frame pair plus its analytic ground-truth flow from frame0 to frame1.
struct FlowWorkload {
  Image frame0;
  Image frame1;
  FlowField ground_truth;
};

/// frame1(x) = frame0(x - t): every pixel moves by (dx, dy) = t.
[[nodiscard]] FlowWorkload translating_scene(int rows, int cols, float dx,
                                             float dy,
                                             std::uint64_t seed = 42);

/// Rotation by `radians` around the frame center.
[[nodiscard]] FlowWorkload rotating_scene(int rows, int cols, float radians,
                                          std::uint64_t seed = 42);

/// Uniform zoom by `scale` around the frame center (scale > 1 expands).
[[nodiscard]] FlowWorkload zooming_scene(int rows, int cols, float scale,
                                         std::uint64_t seed = 42);

/// A moving bright square on a dark background — the classic discontinuous
/// motion case TV-L1 is designed to handle (the TV prior preserves motion
/// boundaries).  Ground truth marks the square's pixels with (dx, dy) and
/// the background with 0.
[[nodiscard]] FlowWorkload moving_square(int rows, int cols, int square,
                                         int dx, int dy);

/// Adds Gaussian noise of the given stddev to both frames.
void corrupt(FlowWorkload& wl, float noise_stddev, std::uint64_t seed = 7);

}  // namespace chambolle::workloads
