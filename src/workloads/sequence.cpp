#include "workloads/sequence.hpp"

#include <cmath>
#include <stdexcept>

namespace chambolle::workloads {

void SequenceParams::validate() const {
  if (frames < 2) throw std::invalid_argument("SequenceParams: frames < 2");
  if (kind == MotionKind::kZoom && rate <= -1.f)
    throw std::invalid_argument("SequenceParams: zoom rate <= -1");
}

VideoSequence make_sequence(int rows, int cols, const SequenceParams& params) {
  params.validate();
  VideoSequence seq;
  seq.frames.reserve(static_cast<std::size_t>(params.frames));

  // Each frame is rendered analytically from the cumulative motion at time
  // k, so inter-frame consistency is exact (no resampling accumulation).
  for (int k = 0; k < params.frames; ++k) {
    switch (params.kind) {
      case MotionKind::kPan: {
        const FlowWorkload wl = translating_scene(
            rows, cols, params.rate_x * static_cast<float>(k),
            params.rate_y * static_cast<float>(k), params.seed);
        seq.frames.push_back(k == 0 ? wl.frame0 : wl.frame1);
        break;
      }
      case MotionKind::kRotate: {
        const FlowWorkload wl = rotating_scene(
            rows, cols, params.rate * static_cast<float>(k), params.seed);
        seq.frames.push_back(k == 0 ? wl.frame0 : wl.frame1);
        break;
      }
      case MotionKind::kZoom: {
        const float scale = std::pow(1.f + params.rate, static_cast<float>(k));
        const FlowWorkload wl = zooming_scene(rows, cols, scale, params.seed);
        seq.frames.push_back(k == 0 ? wl.frame0 : wl.frame1);
        break;
      }
    }
  }

  // Per-pair ground truth.  Pan and zoom steps are spatially self-similar;
  // a rotation step's flow field is texture-independent, so one template
  // serves every pair.
  seq.truth.reserve(static_cast<std::size_t>(params.frames) - 1);
  for (int k = 0; k + 1 < params.frames; ++k) {
    switch (params.kind) {
      case MotionKind::kPan: {
        FlowField f(rows, cols);
        f.fill(params.rate_x, params.rate_y);
        seq.truth.push_back(std::move(f));
        break;
      }
      case MotionKind::kRotate:
        seq.truth.push_back(
            rotating_scene(rows, cols, params.rate, params.seed).ground_truth);
        break;
      case MotionKind::kZoom:
        seq.truth.push_back(
            zooming_scene(rows, cols, 1.f + params.rate, params.seed)
                .ground_truth);
        break;
    }
  }
  return seq;
}

}  // namespace chambolle::workloads
