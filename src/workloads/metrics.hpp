// metrics.hpp — optical-flow accuracy metrics.
//
// Average endpoint error (AEE) and average angular error (AAE) are the
// standard Middlebury measures; they turn the paper's qualitative "the flow
// is correct" into assertable numbers for every solver backend.
#pragma once

#include "common/image.hpp"

namespace chambolle::workloads {

/// Mean Euclidean distance between estimated and true flow vectors.
[[nodiscard]] double average_endpoint_error(const FlowField& estimate,
                                            const FlowField& truth);

/// Mean angular error (degrees) in the space-time sense of Barron et al.:
/// angle between (u1, u2, 1) vectors.
[[nodiscard]] double average_angular_error_deg(const FlowField& estimate,
                                               const FlowField& truth);

/// AEE restricted to the interior (ignoring a border of `margin` pixels,
/// where warping-based estimators are inherently uninformed).
[[nodiscard]] double interior_endpoint_error(const FlowField& estimate,
                                             const FlowField& truth,
                                             int margin);

/// Root-mean-square intensity difference between two images.
[[nodiscard]] double rms_diff(const Image& a, const Image& b);

}  // namespace chambolle::workloads
