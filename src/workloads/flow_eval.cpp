#include "workloads/flow_eval.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace chambolle::workloads {

FlowErrorStats evaluate_flow(const FlowField& estimate, const FlowField& truth,
                             int margin) {
  if (!estimate.same_shape(truth))
    throw std::invalid_argument("evaluate_flow: shape mismatch");
  if (margin < 0) throw std::invalid_argument("evaluate_flow: margin < 0");

  std::vector<double> errors;
  errors.reserve(static_cast<std::size_t>(estimate.rows()) *
                 static_cast<std::size_t>(estimate.cols()));
  for (int r = margin; r < estimate.rows() - margin; ++r)
    for (int c = margin; c < estimate.cols() - margin; ++c) {
      const double dx = static_cast<double>(estimate.u1(r, c)) - truth.u1(r, c);
      const double dy = static_cast<double>(estimate.u2(r, c)) - truth.u2(r, c);
      errors.push_back(std::sqrt(dx * dx + dy * dy));
    }

  FlowErrorStats stats;
  stats.pixels = static_cast<long long>(errors.size());
  if (errors.empty()) return stats;

  double sum = 0.0;
  for (double e : errors) {
    sum += e;
    stats.max = std::max(stats.max, e);
    if (e > 0.5) stats.r05 += 1.0;
    if (e > 1.0) stats.r10 += 1.0;
    if (e > 2.0) stats.r20 += 1.0;
    const int bin = std::min(static_cast<int>(e / 0.25), 15);
    ++stats.histogram[static_cast<std::size_t>(bin)];
  }
  const double n = static_cast<double>(errors.size());
  stats.mean = sum / n;
  stats.r05 /= n;
  stats.r10 /= n;
  stats.r20 /= n;

  std::sort(errors.begin(), errors.end());
  const auto pct = [&](double q) {
    const std::size_t i = static_cast<std::size_t>(
        q * static_cast<double>(errors.size() - 1));
    return errors[i];
  };
  stats.median = pct(0.5);
  stats.p90 = pct(0.9);
  stats.p99 = pct(0.99);
  return stats;
}

std::string histogram_sparkline(const FlowErrorStats& stats) {
  static const char* const kLevels[] = {" ", ".", ":", "-", "=", "+", "*",
                                        "#"};
  long long peak = 1;
  for (long long b : stats.histogram) peak = std::max(peak, b);
  std::string out;
  for (long long b : stats.histogram) {
    const int level = static_cast<int>(
        std::round(7.0 * static_cast<double>(b) / static_cast<double>(peak)));
    out += kLevels[level];
  }
  return out;
}

}  // namespace chambolle::workloads
