#include "workloads/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace chambolle::workloads {
namespace {

constexpr double kRadToDeg = 57.29577951308232;

void check_shapes(const FlowField& a, const FlowField& b) {
  if (!a.same_shape(b))
    throw std::invalid_argument("flow metrics: shape mismatch");
}

}  // namespace

double average_endpoint_error(const FlowField& estimate,
                              const FlowField& truth) {
  return interior_endpoint_error(estimate, truth, 0);
}

double interior_endpoint_error(const FlowField& estimate,
                               const FlowField& truth, int margin) {
  check_shapes(estimate, truth);
  if (margin < 0) throw std::invalid_argument("interior_endpoint_error");
  double sum = 0.0;
  long long n = 0;
  for (int r = margin; r < estimate.rows() - margin; ++r)
    for (int c = margin; c < estimate.cols() - margin; ++c) {
      const double dx = static_cast<double>(estimate.u1(r, c)) - truth.u1(r, c);
      const double dy = static_cast<double>(estimate.u2(r, c)) - truth.u2(r, c);
      sum += std::sqrt(dx * dx + dy * dy);
      ++n;
    }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double average_angular_error_deg(const FlowField& estimate,
                                 const FlowField& truth) {
  check_shapes(estimate, truth);
  double sum = 0.0;
  long long n = 0;
  for (int r = 0; r < estimate.rows(); ++r)
    for (int c = 0; c < estimate.cols(); ++c) {
      const double ex = estimate.u1(r, c), ey = estimate.u2(r, c);
      const double tx = truth.u1(r, c), ty = truth.u2(r, c);
      const double num = ex * tx + ey * ty + 1.0;
      const double den =
          std::sqrt(ex * ex + ey * ey + 1.0) * std::sqrt(tx * tx + ty * ty + 1.0);
      const double cosang = std::min(1.0, std::max(-1.0, num / den));
      sum += std::acos(cosang) * kRadToDeg;
      ++n;
    }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double rms_diff(const Image& a, const Image& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("rms_diff: shape");
  if (a.size() == 0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace chambolle::workloads
