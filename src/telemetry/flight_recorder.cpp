#include "telemetry/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "telemetry/json_util.hpp"
#include "telemetry/trace.hpp"

namespace chambolle::telemetry {
namespace detail {

std::atomic<int> g_flight_enabled{-1};

int flight_init_from_env() {
  const char* env = std::getenv("CHAMBOLLE_FLIGHT");
  int v = 1;  // the recorder is on unless explicitly switched off
  if (env != nullptr) {
    const std::string s(env);
    if (s == "0" || s == "off" || s == "OFF" || s == "false" || s == "FALSE" ||
        s == "no" || s == "NO")
      v = 0;
  }
  int expected = -1;
  g_flight_enabled.compare_exchange_strong(expected, v,
                                           std::memory_order_relaxed);
  return g_flight_enabled.load(std::memory_order_relaxed);
}

}  // namespace detail

namespace {

struct FlightEvent {
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  double value = 0.0;
  char name[40] = {};
};

/// One thread's ring.  Written only by the owning thread (one release index
/// publish per event); read by the dumpers.  Heap-allocated and leaked so a
/// crash dump can walk rings of threads that already exited.
struct FlightRing {
  std::uint32_t tid = 0;
  std::atomic<std::uint64_t> head{0};  ///< total events ever written
  FlightEvent ring[kFlightRingCapacity];
};

/// Lock-free ring table: slots are claimed with a fetch_add and published
/// with a release store, so the crash handler can walk it without taking
/// any lock (the property a postmortem path must have).
std::atomic<FlightRing*> g_rings[kFlightMaxThreads] = {};
std::atomic<int> g_ring_count{0};

FlightRing* local_ring() {
  thread_local FlightRing* ring = [] {
    const int slot = g_ring_count.fetch_add(1, std::memory_order_relaxed);
    if (slot >= kFlightMaxThreads) return static_cast<FlightRing*>(nullptr);
    auto* r = new FlightRing();  // leaked: must outlive the thread
    r->tid = static_cast<std::uint32_t>(slot) + 1;
    g_rings[slot].store(r, std::memory_order_release);
    return r;
  }();
  return ring;
}

void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
            double value) {
  FlightRing* r = local_ring();
  if (r == nullptr) return;  // more threads than table slots: drop
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  FlightEvent& ev = r->ring[h % kFlightRingCapacity];
  std::strncpy(ev.name, name, sizeof ev.name - 1);
  ev.name[sizeof ev.name - 1] = '\0';
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.value = value;
  r->head.store(h + 1, std::memory_order_release);
}

// ---- async-signal-safe formatting -----------------------------------------

/// write(2)-backed buffered writer using only stack/static storage.
struct SafeWriter {
  int fd = -1;
  char buf[4096];
  std::size_t len = 0;

  void flush() {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void put(const char* s) {
    while (*s != '\0') {
      if (len == sizeof buf) flush();
      buf[len++] = *s++;
    }
  }
  void put_ch(char c) {
    if (len == sizeof buf) flush();
    buf[len++] = c;
  }
  void put_u64(std::uint64_t v) {
    char tmp[24];
    int i = 0;
    do {
      tmp[i++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (i > 0) put_ch(tmp[--i]);
  }
  void put_i64(std::int64_t v) {
    if (v < 0) {
      put_ch('-');
      put_u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
    } else {
      put_u64(static_cast<std::uint64_t>(v));
    }
  }
  /// Fixed-point %.6f without touching printf (not async-signal-safe).
  void put_double(double v) {
    if (!(v == v)) {  // NaN
      put("null");
      return;
    }
    if (v < 0) {
      put_ch('-');
      v = -v;
    }
    if (v > 9.2e18) {  // out of int64 range: clamp, precision is gone anyway
      put("9.2e18");
      return;
    }
    const std::uint64_t whole = static_cast<std::uint64_t>(v);
    const std::uint64_t frac =
        static_cast<std::uint64_t>((v - static_cast<double>(whole)) * 1e6);
    put_u64(whole);
    put_ch('.');
    char tmp[8];
    for (int i = 5; i >= 0; --i) {
      tmp[i] = static_cast<char>('0' + (frac / [](int p) {
                                          std::uint64_t m = 1;
                                          for (int k = 0; k < p; ++k) m *= 10;
                                          return m;
                                        }(5 - i)) %
                                           10);
    }
    for (int i = 0; i < 6; ++i) put_ch(tmp[i]);
  }
  /// Names are ASCII literals in practice; anything that would need a JSON
  /// escape is replaced rather than escaped — no state to get wrong mid-crash.
  void put_name(const char* s) {
    put_ch('"');
    for (; *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      put_ch(c < 0x20 || c > 0x7e || c == '"' || c == '\\' ? '_'
                                                           : static_cast<char>(c));
    }
    put_ch('"');
  }
};

char g_dump_path[512] = "flight_record.json";

extern "C" void chambolle_flight_crash_handler(int sig) {
  flight_crash_dump(g_dump_path);
  // SA_RESETHAND already restored the default disposition; re-raise so the
  // process dies with the original signal (core dump, exit status intact).
  ::raise(sig);
}

}  // namespace

void set_flight_recorder_enabled(bool on) {
#ifdef CHAMBOLLE_TELEMETRY_DISABLED
  (void)on;
#else
  detail::g_flight_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
#endif
}

void flight_mark(const char* name, double value) {
  if (!flight_recorder_enabled()) return;
  record(name, detail::trace_now_ns(), 0, value);
}

void flight_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns) {
  if (!flight_recorder_enabled()) return;
  record(name, start_ns, dur_ns, 0.0);
}

// The non-crash readers below require recorder quiescence (no thread
// concurrently recording) — see the contract block in flight_recorder.hpp.
// Only the async-signal-safe crash dump may race live writers, and it
// accepts torn slots as best-effort postmortem output.

std::size_t flight_event_count() {
  std::size_t total = 0;
  const int n = std::min(g_ring_count.load(std::memory_order_acquire),
                         kFlightMaxThreads);
  for (int i = 0; i < n; ++i) {
    const FlightRing* r = g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    total += static_cast<std::size_t>(
        h < kFlightRingCapacity ? h : kFlightRingCapacity);
  }
  return total;
}

void clear_flight_record() {
  const int n = std::min(g_ring_count.load(std::memory_order_acquire),
                         kFlightMaxThreads);
  for (int i = 0; i < n; ++i) {
    FlightRing* r = g_rings[i].load(std::memory_order_acquire);
    if (r != nullptr) r->head.store(0, std::memory_order_release);
  }
}

std::string flight_record_json() {
  std::string out = "{\"flight_recorder\":{\"events\":[\n";
  bool first = true;
  const int n = std::min(g_ring_count.load(std::memory_order_acquire),
                         kFlightMaxThreads);
  for (int i = 0; i < n; ++i) {
    const FlightRing* r = g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    const std::uint64_t cnt = h < kFlightRingCapacity ? h : kFlightRingCapacity;
    for (std::uint64_t k = h - cnt; k < h; ++k) {
      const FlightEvent& ev = r->ring[k % kFlightRingCapacity];
      out += first ? "{" : ",\n{";
      first = false;
      out += "\"t_us\":" + json_number(static_cast<double>(ev.start_ns) / 1e3);
      out += ",\"dur_us\":" + json_number(static_cast<double>(ev.dur_ns) / 1e3);
      out += ",\"tid\":" + json_number(static_cast<std::uint64_t>(r->tid));
      out += ",\"name\":";
      json_append_escaped(out, ev.name);
      out += ",\"value\":" + json_number(ev.value) + "}";
    }
  }
  out += "\n]}}\n";
  return out;
}

bool write_flight_record(const std::string& path) {
  return write_text_file(path, flight_record_json());
}

bool flight_crash_dump(const char* path) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  SafeWriter w;
  w.fd = fd;
  w.put("{\"flight_recorder\":{\"crash\":true,\"events\":[\n");
  bool first = true;
  const int n = std::min(g_ring_count.load(std::memory_order_acquire),
                         kFlightMaxThreads);
  for (int i = 0; i < n; ++i) {
    const FlightRing* r = g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    const std::uint64_t cnt = h < kFlightRingCapacity ? h : kFlightRingCapacity;
    for (std::uint64_t k = h - cnt; k < h; ++k) {
      const FlightEvent& ev = r->ring[k % kFlightRingCapacity];
      if (!first) w.put(",\n");
      first = false;
      w.put("{\"t_us\":");
      w.put_u64(ev.start_ns / 1000);
      w.put(",\"dur_us\":");
      w.put_u64(ev.dur_ns / 1000);
      w.put(",\"tid\":");
      w.put_u64(r->tid);
      w.put(",\"name\":");
      w.put_name(ev.name);
      w.put(",\"value\":");
      w.put_double(ev.value);
      w.put_ch('}');
    }
  }
  w.put("\n]}}\n");
  w.flush();
  ::close(fd);
  return true;
}

void install_crash_handler(const char* path) {
  if (path == nullptr) path = std::getenv("CHAMBOLLE_FLIGHT_DUMP");
  if (path != nullptr && *path != '\0') {
    std::strncpy(g_dump_path, path, sizeof g_dump_path - 1);
    g_dump_path[sizeof g_dump_path - 1] = '\0';
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = chambolle_flight_crash_handler;
  sa.sa_flags = SA_RESETHAND;  // one shot: the re-raise takes the default path
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGABRT, SIGFPE, SIGBUS})
    ::sigaction(sig, &sa, nullptr);
}

}  // namespace chambolle::telemetry
