#include "telemetry/json_util.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace chambolle::telemetry {

void json_append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips doubles; trim to %.6f-looking output only via %g.
  std::snprintf(buf, sizeof buf, "%.12g", v);
  std::string s = buf;
  // JSON requires a digit after a bare trailing '.', and %g never emits one,
  // but ensure "1e+06"-style output stays as-is (valid JSON).
  return s;
}

std::string json_number(std::uint64_t v) { return std::to_string(v); }
std::string json_number(std::int64_t v) { return std::to_string(v); }

namespace {

/// Cursor over the candidate document; each parse_* consumes one production
/// or returns false with the position unspecified (callers give up anyway).
struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'))
      ++i;
  }
  bool eat(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  bool parse_string() {
    if (!eat('"')) return false;
    while (i < s.size()) {
      const unsigned char c = static_cast<unsigned char>(s[i]);
      if (c == '"') {
        ++i;
        return true;
      }
      if (c < 0x20) return false;  // raw control char: must be escaped
      if (c == '\\') {
        ++i;
        if (i >= s.size()) return false;
        const char e = s[i];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k)
            if (i + k >= s.size() || std::isxdigit(static_cast<unsigned char>(
                                         s[i + k])) == 0)
              return false;
          i += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++i;
    }
    return false;  // unterminated
  }

  bool parse_number() {
    const std::size_t start = i;
    if (eat('-')) {
    }
    if (!eat('0')) {
      if (i >= s.size() || s[i] < '1' || s[i] > '9') return false;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    if (eat('.')) {
      if (i >= s.size() || std::isdigit(static_cast<unsigned char>(s[i])) == 0)
        return false;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      if (i >= s.size() || std::isdigit(static_cast<unsigned char>(s[i])) == 0)
        return false;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    return i > start;
  }

  bool parse_literal(const char* lit) {
    for (; *lit != '\0'; ++lit)
      if (!eat(*lit)) return false;
    return true;
  }

  bool parse_value(int depth) {
    if (depth > 128) return false;
    skip_ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': {
        ++i;
        skip_ws();
        if (eat('}')) return true;
        while (true) {
          skip_ws();
          if (!parse_string()) return false;
          skip_ws();
          if (!eat(':')) return false;
          if (!parse_value(depth + 1)) return false;
          skip_ws();
          if (eat('}')) return true;
          if (!eat(',')) return false;
        }
      }
      case '[': {
        ++i;
        skip_ws();
        if (eat(']')) return true;
        while (true) {
          if (!parse_value(depth + 1)) return false;
          skip_ws();
          if (eat(']')) return true;
          if (!eat(',')) return false;
        }
      }
      case '"':
        return parse_string();
      case 't':
        return parse_literal("true");
      case 'f':
        return parse_literal("false");
      case 'n':
        return parse_literal("null");
      default:
        return parse_number();
    }
  }
};

}  // namespace

bool json_well_formed(const std::string& s) {
  JsonCursor c{s};
  if (!c.parse_value(0)) return false;
  c.skip_ws();
  return c.i == s.size();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

}  // namespace chambolle::telemetry
