#include "telemetry/json_util.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace chambolle::telemetry {

void json_append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips doubles; trim to %.6f-looking output only via %g.
  std::snprintf(buf, sizeof buf, "%.12g", v);
  std::string s = buf;
  // JSON requires a digit after a bare trailing '.', and %g never emits one,
  // but ensure "1e+06"-style output stays as-is (valid JSON).
  return s;
}

std::string json_number(std::uint64_t v) { return std::to_string(v); }
std::string json_number(std::int64_t v) { return std::to_string(v); }

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

}  // namespace chambolle::telemetry
