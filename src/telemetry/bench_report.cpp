#include "telemetry/bench_report.hpp"

#include <cstdio>

#include "telemetry/json_util.hpp"
#include "telemetry/metrics.hpp"

namespace chambolle::telemetry {

std::string bench_report_json(const std::string& name,
                              const BenchParams& params, double wall_ms) {
  std::string out = "{\n  \"name\": ";
  json_append_escaped(out, name);
  out += ",\n  \"params\": {";
  bool first = true;
  for (const auto& [key, value] : params) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_escaped(out, key);
    out += ": ";
    json_append_escaped(out, value);
  }
  out += "\n  },\n  \"wall_ms\": " + json_number(wall_ms);
  out += ",\n  \"metrics\": " + registry().snapshot_json();
  // snapshot_json ends with "}\n"; splice it in as a nested object.
  while (!out.empty() && out.back() == '\n') out.pop_back();
  out += "\n}\n";
  return out;
}

std::string write_bench_report(const std::string& name,
                               const BenchParams& params, double wall_ms,
                               const std::string& dir) {
  const std::string path = dir + "/BENCH_" + name + ".json";
  if (!write_text_file(path, bench_report_json(name, params, wall_ms)))
    return "";
  std::printf("[bench_report] wrote %s\n", path.c_str());
  return path;
}

}  // namespace chambolle::telemetry
