#include "telemetry/bench_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "telemetry/json_util.hpp"
#include "telemetry/metrics.hpp"

namespace chambolle::telemetry {

std::string bench_report_json(const std::string& name,
                              const BenchParams& params, double wall_ms) {
  std::string out = "{\n  \"name\": ";
  json_append_escaped(out, name);
  out += ",\n  \"params\": {";
  bool first = true;
  for (const auto& [key, value] : params) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_escaped(out, key);
    out += ": ";
    json_append_escaped(out, value);
  }
  out += "\n  },\n  \"wall_ms\": " + json_number(wall_ms);
  out += ",\n  \"metrics\": " + registry().snapshot_json();
  // snapshot_json ends with "}\n"; splice it in as a nested object.
  while (!out.empty() && out.back() == '\n') out.pop_back();
  out += "\n}\n";
  return out;
}

std::string write_bench_report(const std::string& name,
                               const BenchParams& params, double wall_ms,
                               const std::string& dir) {
  const std::string path = dir + "/BENCH_" + name + ".json";
  if (!write_text_file(path, bench_report_json(name, params, wall_ms)))
    return "";
  std::printf("[bench_report] wrote %s\n", path.c_str());
  return path;
}

RepeatStats repeat_stats(std::vector<double> samples) {
  RepeatStats out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  out.min = samples.front();
  out.max = samples.back();
  out.median = n % 2 == 1 ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  out.count = n;
  // MAD: reuse the sample buffer for the absolute deviations.
  for (double& s : samples) s = std::abs(s - out.median);
  std::sort(samples.begin(), samples.end());
  out.mad = n % 2 == 1 ? samples[n / 2]
                       : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  return out;
}

void append_repeat_stats(BenchParams& params, const std::string& key,
                         const RepeatStats& stats) {
  const auto fmt = [](double x) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", x);
    return std::string(buf);
  };
  params.emplace_back(key + "_min", fmt(stats.min));
  params.emplace_back(key + "_median", fmt(stats.median));
  params.emplace_back(key + "_max", fmt(stats.max));
  params.emplace_back(key + "_mad", fmt(stats.mad));
  params.emplace_back(key + "_n", std::to_string(stats.count));
}

}  // namespace chambolle::telemetry
