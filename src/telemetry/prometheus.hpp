// prometheus.hpp — Prometheus text exposition of the metric registry.
//
// Renders every registered counter, gauge, and histogram in the Prometheus
// text format (version 0.0.4): the metrics surface the future flow_server
// will serve over HTTP, available today via `flow_cli --metrics-prom` for
// node_exporter-style textfile collection.
//
// Mapping:
//   * metric names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* — the repo's
//     dot-separated names ("chambolle.solver.iterations") become underscore
//     paths ("chambolle_solver_iterations");
//   * histograms render cumulative `_bucket{le="..."}` series, a `+Inf`
//     bucket, `_sum` and `_count`, plus derived `_p50` / `_p95` / `_p99`
//     gauges from Histogram::quantile() so dashboards get percentiles
//     without a PromQL histogram_quantile() round-trip.
#pragma once

#include <string>

namespace chambolle::telemetry {

/// Sanitizes `name` into a valid Prometheus metric name (invalid characters
/// become '_'; a leading digit gets a '_' prefix).  Exposed for tests.
[[nodiscard]] std::string prometheus_metric_name(const std::string& name);

/// Renders the whole registry in the Prometheus text format.
[[nodiscard]] std::string prometheus_text();

/// Writes prometheus_text() to `path`; false on I/O failure.
bool write_prometheus(const std::string& path);

}  // namespace chambolle::telemetry
