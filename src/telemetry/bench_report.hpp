// bench_report.hpp — machine-readable benchmark artifacts.
//
// Every bench binary that adopts this writes BENCH_<name>.json next to its
// stdout table, with a stable schema:
//
//   {
//     "name":    "<bench name>",
//     "params":  { "<key>": "<value>", ... },   // run configuration + results
//     "wall_ms": <total wall-clock of the run>,
//     "metrics": { ...MetricRegistry snapshot... }
//   }
//
// so CI and plotting scripts consume benchmark output without scraping
// tables.  The metrics snapshot is embedded even when telemetry was off
// (all zeros then) to keep the schema stable.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace chambolle::telemetry {

using BenchParams = std::vector<std::pair<std::string, std::string>>;

/// Serializes the report; exposed separately for testing.
[[nodiscard]] std::string bench_report_json(const std::string& name,
                                            const BenchParams& params,
                                            double wall_ms);

/// Writes BENCH_<name>.json into `dir` (default: current directory).
/// Returns the path written, or an empty string on I/O failure.
std::string write_bench_report(const std::string& name,
                               const BenchParams& params, double wall_ms,
                               const std::string& dir = ".");

/// Order statistics of repeated measurements — the noise-robust form every
/// bench emits: a single best-of number hides run-to-run variance, which is
/// exactly what CI needs to see to tell a regression from scheduler noise.
struct RepeatStats {
  double min = 0.0;
  double median = 0.0;  ///< even counts: mean of the middle pair
  double max = 0.0;
  double mad = 0.0;  ///< median absolute deviation from the median
  std::size_t count = 0;
};

/// Computes RepeatStats from raw samples (any unit).  Empty input -> zeros.
[[nodiscard]] RepeatStats repeat_stats(std::vector<double> samples);

/// Emits `<key>_min`, `<key>_median`, `<key>_max`, `<key>_mad` (%.3f) and
/// `<key>_n` into `params` — the MAD and sample count give bench_diff a
/// per-benchmark noise scale instead of a one-size-fits-all threshold.
void append_repeat_stats(BenchParams& params, const std::string& key,
                         const RepeatStats& stats);

}  // namespace chambolle::telemetry
