// bench_report.hpp — machine-readable benchmark artifacts.
//
// Every bench binary that adopts this writes BENCH_<name>.json next to its
// stdout table, with a stable schema:
//
//   {
//     "name":    "<bench name>",
//     "params":  { "<key>": "<value>", ... },   // run configuration + results
//     "wall_ms": <total wall-clock of the run>,
//     "metrics": { ...MetricRegistry snapshot... }
//   }
//
// so CI and plotting scripts consume benchmark output without scraping
// tables.  The metrics snapshot is embedded even when telemetry was off
// (all zeros then) to keep the schema stable.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace chambolle::telemetry {

using BenchParams = std::vector<std::pair<std::string, std::string>>;

/// Serializes the report; exposed separately for testing.
[[nodiscard]] std::string bench_report_json(const std::string& name,
                                            const BenchParams& params,
                                            double wall_ms);

/// Writes BENCH_<name>.json into `dir` (default: current directory).
/// Returns the path written, or an empty string on I/O failure.
std::string write_bench_report(const std::string& name,
                               const BenchParams& params, double wall_ms,
                               const std::string& dir = ".");

}  // namespace chambolle::telemetry
