// convergence.hpp — per-iteration convergence recording for the solvers.
//
// The paper's quantitative story is about iterations: how many Chambolle
// fixed-point steps a quality target needs, and how fast the dual residual
// max|Δp| decays.  ConvergenceTrace captures that curve — iteration index,
// max|Δp| over both dual components, and the ROF energy of the current
// primal iterate — so convergence plots and regression checks read one JSON
// artifact instead of re-deriving the curve from scratch.
//
// Unlike the metric registry this recorder is deliberately NOT global: a
// caller that wants the curve passes a ConvergenceTrace* into solve() and
// owns the result.  Recording is independent of telemetry::enabled() —
// passing the recorder IS the opt-in (and it changes the solve's stepping,
// so an env var must not silently flip it).
#pragma once

#include <string>
#include <vector>

namespace chambolle::telemetry {

struct ConvergencePoint {
  int iteration = 0;       ///< 1-based fixed-point iteration index
  double max_delta_p = 0;  ///< max over cells of |Δpx| and |Δpy| this step
  double energy = 0;       ///< ROF energy of the recovered primal iterate
};

class ConvergenceTrace {
 public:
  void record(int iteration, double max_delta_p, double energy) {
    points_.push_back({iteration, max_delta_p, energy});
  }

  [[nodiscard]] const std::vector<ConvergencePoint>& points() const {
    return points_;
  }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  void clear() { points_.clear(); }

  /// JSON array of {"iteration", "max_delta_p", "energy"} objects.
  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  std::vector<ConvergencePoint> points_;
};

}  // namespace chambolle::telemetry
