// profiler.hpp — the per-lane execution profiler.
//
// The parallel engines report WHAT they did (tiles.passes, pool.tasks) and
// one aggregate stall number (tiles.stall_micros), but tuning the resident
// engine — and building the multi-stream service and adaptive convergence on
// top of it — needs per-lane attribution of WHERE each lane's wall time
// went.  A profiling session classifies every lane's time into five causes:
//
//   kernel   — inside the fused iteration kernel (useful work)
//   epoch    — waiting for a neighbor tile's epoch in the EpochGraph
//   barrier  — inside Barrier::arrive_and_wait (bulk-synchronous schedules)
//   mailbox  — gathering/scattering halo strips through tile mailboxes
//   idle     — the residual: lane existed but ran none of the above
//              (pool idle between regions, setup, write-back)
//
// so the five buckets partition each lane's session wall time exactly; the
// report derives busy fraction, an imbalance ratio, a per-cause stall
// breakdown, and per-tile pass timings, exported as JSON and as a
// human-readable text table (docs/observability.md documents the schema).
//
// Usage (quiescent begin/end — bracket a solve, not a running region):
//
//   telemetry::Profiler::instance().begin(lanes);
//   ... solve ...
//   const telemetry::UtilizationReport r = telemetry::Profiler::instance().end();
//   write_text_file("profile.json", r.to_json());
//
// Cost model: with no active session every instrumentation point is one
// relaxed atomic load and a predicted branch — ProfScope reads no clock and
// touches no memory.  During a session, recording is one steady-clock pair
// plus one relaxed fetch_add per scope; there are no locks anywhere on the
// record path.  Lane identity comes from a thread_local set by the
// ThreadPool when a region body enters a lane (threads outside any region
// record nothing).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace chambolle::telemetry {

/// Where a lane's time went.  kIdle is never recorded directly — it is the
/// per-lane residual (wall minus attributed) computed by end().
enum class LaneCause : int {
  kKernel = 0,
  kEpochWait = 1,
  kBarrierWait = 2,
  kMailbox = 3,
  kIdle = 4,
};
inline constexpr int kLaneCauseCount = 5;

/// Stable lower_snake name ("kernel", "epoch_wait", "barrier_wait",
/// "mailbox", "idle") — the JSON/table field names.
[[nodiscard]] const char* lane_cause_name(LaneCause c);

namespace detail {
extern std::atomic<int> g_profiler_active;  ///< 1 while a session runs
}  // namespace detail

/// True while a profiling session is active.  The one-load fast path every
/// instrumentation point checks first.
inline bool profiler_active() {
#ifdef CHAMBOLLE_TELEMETRY_DISABLED
  return false;
#else
  return detail::g_profiler_active.load(std::memory_order_acquire) != 0;
#endif
}

/// Thread -> lane mapping.  The ThreadPool sets the calling thread's lane id
/// on region entry and restores the previous value on exit; -1 (the default)
/// means "not in a region" and drops any recording.  Returns the previous
/// value so callers can nest.
int profiler_set_lane(int lane);
[[nodiscard]] int profiler_lane();

/// Adds `seconds` of `cause` to the calling thread's lane (no-op when no
/// session is active, the lane is unmapped, or the lane is outside the
/// session's lane range).  For call sites that already hold a measured
/// duration (the EpochGraph's stall clock); scoped sites use ProfScope.
void profiler_add(LaneCause cause, double seconds);

/// Adds one pass of `seconds` kernel time to tile `node`'s per-tile timing
/// (in addition to profiler_add(kKernel, ...), which the caller does
/// separately).  Out-of-range tiles are dropped.
void profiler_add_tile(int tile, double seconds);

/// Scoped attribution: measures its lifetime and adds it to the calling
/// lane's `cause` bucket.  Fully inert (no clock read) without a session.
class ProfScope {
 public:
  explicit ProfScope(LaneCause cause);
  ~ProfScope();
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  std::uint64_t start_ns_ = 0;
  std::int32_t cause_ = -1;  // -1 = inert
};

/// One lane's accounting: seconds and event counts per cause.  kIdle's
/// seconds are the residual; its event count is always 0.
struct LaneUsage {
  double seconds[kLaneCauseCount] = {0, 0, 0, 0, 0};
  std::uint64_t events[kLaneCauseCount] = {0, 0, 0, 0, 0};

  /// Attributed (non-idle) seconds.
  [[nodiscard]] double attributed() const {
    double s = 0;
    for (int c = 0; c < kLaneCauseCount; ++c)
      if (c != static_cast<int>(LaneCause::kIdle)) s += seconds[c];
    return s;
  }
  /// Sum over ALL causes including idle — equals the session wall time by
  /// construction (the acceptance invariant tests assert).
  [[nodiscard]] double total() const {
    double s = 0;
    for (int c = 0; c < kLaneCauseCount; ++c) s += seconds[c];
    return s;
  }
};

/// Per-tile kernel-time accounting (resident engine only; empty otherwise).
struct TileTiming {
  std::uint64_t passes = 0;
  double seconds = 0.0;
};

/// The per-solve utilization report Profiler::end() aggregates.
struct UtilizationReport {
  double wall_seconds = 0.0;
  std::vector<LaneUsage> lanes;
  std::vector<TileTiming> tiles;  ///< indexed by tile/node id

  /// Mean over lanes of kernel_seconds / wall — the fraction of the
  /// machine's lane-seconds spent doing useful work.
  [[nodiscard]] double busy_fraction() const;
  /// max over lanes of kernel seconds / mean over lanes — 1.0 is perfectly
  /// balanced; 2.0 means the busiest lane did twice the mean.
  [[nodiscard]] double imbalance_ratio() const;
  /// Seconds of `cause` summed over lanes.
  [[nodiscard]] double total_seconds(LaneCause cause) const;

  /// JSON object (schema in docs/observability.md).
  [[nodiscard]] std::string to_json() const;
  /// Human-readable fixed-width table, one row per lane plus a summary.
  [[nodiscard]] std::string to_table() const;
};

/// The process-wide profiler.  One session at a time; begin()/end() must be
/// called at quiescent points (no region running), which every call site in
/// this repo does — the record path is lock-free precisely because session
/// boundaries are externally synchronized.
class Profiler {
 public:
  static Profiler& instance();

  /// Starts a session for lanes [0, lanes).  Per-tile timings are kept for
  /// tiles [0, max_tiles); recordings outside either range are dropped.
  /// Throws std::logic_error if a session is already active.
  void begin(int lanes, int max_tiles = kDefaultMaxTiles);

  /// Ends the session and aggregates the report.  Throws std::logic_error
  /// if no session is active.
  UtilizationReport end();

  /// Abandons an active session without building a report (test cleanup).
  void cancel();

  static constexpr int kDefaultMaxTiles = 4096;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

 private:
  Profiler() = default;
  friend void profiler_add(LaneCause, double);
  friend void profiler_add_tile(int, double);

  struct alignas(64) LaneSlot {
    std::atomic<std::uint64_t> ns[kLaneCauseCount - 1];  // no slot for kIdle
    std::atomic<std::uint64_t> events[kLaneCauseCount - 1];
  };
  struct alignas(64) TileSlot {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> passes{0};
  };

  std::vector<LaneSlot> lane_slots_;
  std::vector<TileSlot> tile_slots_;
  std::uint64_t session_start_ns_ = 0;
};

}  // namespace chambolle::telemetry
