#include "telemetry/bench_diff.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "telemetry/json_util.hpp"

namespace chambolle::telemetry {

namespace {

/// Just enough JSON reading for the BENCH schema: pull "name", "wall_ms",
/// and the flat "params" string map out of the top-level object; skip
/// everything else (the embedded metrics snapshot) structurally.
struct BenchParser {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'))
      ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    std::string val;
    while (i < s.size()) {
      const char c = s[i];
      if (c == '"') {
        ++i;
        if (out != nullptr) *out = std::move(val);
        return true;
      }
      if (c == '\\') {
        ++i;
        if (i >= s.size()) return false;
        switch (s[i]) {
          case '"': val.push_back('"'); break;
          case '\\': val.push_back('\\'); break;
          case '/': val.push_back('/'); break;
          case 'b': val.push_back('\b'); break;
          case 'f': val.push_back('\f'); break;
          case 'n': val.push_back('\n'); break;
          case 'r': val.push_back('\r'); break;
          case 't': val.push_back('\t'); break;
          case 'u': {
            if (i + 4 >= s.size()) return false;
            // BENCH params are ASCII; a \uXXXX escape only ever encodes a
            // control character here — decode the low byte, drop the high.
            const std::string hex = s.substr(i + 1, 4);
            char* end = nullptr;
            const long cp = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return false;
            val.push_back(static_cast<char>(cp & 0xff));
            i += 4;
            break;
          }
          default:
            return false;
        }
        ++i;
      } else {
        val.push_back(c);
        ++i;
      }
    }
    return false;
  }

  bool parse_number(double* out) {
    skip_ws();
    const char* start = s.c_str() + i;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    i += static_cast<std::size_t>(end - start);
    if (out != nullptr) *out = v;
    return true;
  }

  bool skip_value() {
    skip_ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{':
      case '[': {
        const char open = s[i];
        const char close = open == '{' ? '}' : ']';
        ++i;
        skip_ws();
        if (eat(close)) return true;
        while (true) {
          if (open == '{') {
            if (!parse_string(nullptr) || !eat(':')) return false;
          }
          if (!skip_value()) return false;
          if (eat(close)) return true;
          if (!eat(',')) return false;
        }
      }
      case '"':
        return parse_string(nullptr);
      case 't':
        i += 4;
        return i <= s.size();
      case 'f':
        i += 5;
        return i <= s.size();
      case 'n':
        i += 4;
        return i <= s.size();
      default:
        return parse_number(nullptr);
    }
  }

  bool parse_params(std::map<std::string, std::string>* out) {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    while (true) {
      std::string key, value;
      if (!parse_string(&key) || !eat(':')) return false;
      skip_ws();
      if (i < s.size() && s[i] == '"') {
        if (!parse_string(&value)) return false;
      } else {
        // Tolerate non-string values from foreign producers: keep the raw
        // token text so numeric params still diff.
        double num = 0.0;
        if (!parse_number(&num)) return false;
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.12g", num);
        value = buf;
      }
      (*out)[key] = std::move(value);
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
};

bool parse_double_param(const std::map<std::string, std::string>& params,
                        const std::string& key, double* out) {
  const auto it = params.find(key);
  if (it == params.end()) return false;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) return false;
  *out = v;
  return true;
}

/// The per-benchmark noise scale: MAD of the repeats when the report carries
/// one, else half the min–max spread (older reports), as a fraction of the
/// base median.  A side that reports `<stem>_n` <= 1 gets the explicit
/// single-sample fallback instead: its MAD is 0 by construction (the one
/// sample's deviation from itself), not because the benchmark is quiet.
double relative_noise(const std::map<std::string, std::string>& params,
                      const std::string& stem, double median,
                      double single_sample_noise) {
  if (median <= 0.0) return 0.0;
  double n = 0.0;
  if (parse_double_param(params, stem + "_n", &n) && n <= 1.0)
    return single_sample_noise;
  double mad = 0.0;
  if (parse_double_param(params, stem + "_mad", &mad)) return mad / median;
  double lo = 0.0, hi = 0.0;
  if (parse_double_param(params, stem + "_min", &lo) &&
      parse_double_param(params, stem + "_max", &hi))
    return 0.5 * (hi - lo) / median;
  return 0.0;
}

}  // namespace

bool parse_bench_report(const std::string& json, BenchReport* out) {
  if (out == nullptr || !json_well_formed(json)) return false;
  BenchParser p{json};
  if (!p.eat('{')) return false;
  if (p.eat('}')) return true;
  while (true) {
    std::string key;
    if (!p.parse_string(&key) || !p.eat(':')) return false;
    if (key == "name") {
      if (!p.parse_string(&out->name)) return false;
    } else if (key == "wall_ms") {
      if (!p.parse_number(&out->wall_ms)) return false;
    } else if (key == "params") {
      if (!p.parse_params(&out->params)) return false;
    } else {
      if (!p.skip_value()) return false;
    }
    if (p.eat('}')) return true;
    if (!p.eat(',')) return false;
  }
}

const char* diff_status_name(DiffStatus s) {
  switch (s) {
    case DiffStatus::kUnchanged:
      return "unchanged";
    case DiffStatus::kImprovement:
      return "improvement";
    case DiffStatus::kRegression:
      return "regression";
    case DiffStatus::kMissing:
      return "missing";
  }
  return "unknown";
}

BenchDiffResult bench_diff(const BenchReport& base, const BenchReport& pr,
                           const BenchDiffOptions& opts) {
  BenchDiffResult result;
  const std::string suffix = "_median";
  const auto timing_stem = [&](const std::string& key) -> std::string {
    if (key.size() <= suffix.size() ||
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0)
      return "";
    const std::string stem = key.substr(0, key.size() - suffix.size());
    // Only wall-clock timings have a defined "better" direction here.
    if (stem.size() < 3 || stem.compare(stem.size() - 3, 3, "_ms") != 0)
      return "";
    return stem;
  };

  for (const auto& [key, value] : base.params) {
    const std::string stem = timing_stem(key);
    if (stem.empty()) continue;
    KeyDiff d;
    d.key = stem;
    if (!parse_double_param(base.params, key, &d.base_median)) continue;
    if (!parse_double_param(pr.params, key, &d.pr_median)) {
      d.status = DiffStatus::kMissing;
      result.keys.push_back(d);
      continue;
    }
    if (d.base_median <= 0.0) {
      d.status = DiffStatus::kMissing;  // degenerate base: no valid ratio
      result.keys.push_back(d);
      continue;
    }
    d.delta = (d.pr_median - d.base_median) / d.base_median;
    const double noise =
        opts.noise_mult * (relative_noise(base.params, stem, d.base_median,
                                          opts.single_sample_noise) +
                           relative_noise(pr.params, stem, d.base_median,
                                          opts.single_sample_noise));
    d.threshold = std::max(opts.threshold, noise);
    if (d.delta > d.threshold)
      d.status = DiffStatus::kRegression;
    else if (d.delta < -d.threshold)
      d.status = DiffStatus::kImprovement;
    else
      d.status = DiffStatus::kUnchanged;
    result.keys.push_back(d);
  }

  // Keys the PR added are reported as missing-on-base (informational).
  for (const auto& [key, value] : pr.params) {
    const std::string stem = timing_stem(key);
    if (stem.empty() || base.params.count(key) != 0) continue;
    KeyDiff d;
    d.key = stem;
    parse_double_param(pr.params, key, &d.pr_median);
    d.status = DiffStatus::kMissing;
    result.keys.push_back(d);
  }
  return result;
}

bool BenchDiffResult::has_regression() const {
  return std::any_of(keys.begin(), keys.end(), [](const KeyDiff& d) {
    return d.status == DiffStatus::kRegression;
  });
}

std::string BenchDiffResult::to_json() const {
  std::string out = "{\n  \"verdict\": ";
  json_append_escaped(out, has_regression() ? "regression" : "pass");
  out += ",\n  \"keys\": [";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const KeyDiff& d = keys[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\"key\": ";
    json_append_escaped(out, d.key);
    out += ", \"base_median\": " + json_number(d.base_median);
    out += ", \"pr_median\": " + json_number(d.pr_median);
    out += ", \"delta\": " + json_number(d.delta);
    out += ", \"threshold\": " + json_number(d.threshold);
    out += ", \"status\": ";
    json_append_escaped(out, diff_status_name(d.status));
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string BenchDiffResult::to_table() const {
  std::string out =
      "key                                base      pr   delta   thresh  "
      "status\n";
  char buf[192];
  for (const KeyDiff& d : keys) {
    std::snprintf(buf, sizeof buf, "%-32s %7.3f %7.3f %+6.1f%%  %6.1f%%  %s\n",
                  d.key.c_str(), d.base_median, d.pr_median, 100.0 * d.delta,
                  100.0 * d.threshold, diff_status_name(d.status));
    out += buf;
  }
  if (keys.empty()) out += "(no comparable *_ms medians)\n";
  out += has_regression() ? "VERDICT: REGRESSION\n" : "VERDICT: PASS\n";
  return out;
}

}  // namespace chambolle::telemetry
