#include "telemetry/convergence.hpp"

#include "telemetry/json_util.hpp"

namespace chambolle::telemetry {

std::string ConvergenceTrace::to_json() const {
  std::string out = "[\n";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const ConvergencePoint& p = points_[i];
    out += "  {\"iteration\": " + std::to_string(p.iteration) +
           ", \"max_delta_p\": " + json_number(p.max_delta_p) +
           ", \"energy\": " + json_number(p.energy) + "}";
    if (i + 1 < points_.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

bool ConvergenceTrace::write_json(const std::string& path) const {
  return write_text_file(path, to_json());
}

}  // namespace chambolle::telemetry
