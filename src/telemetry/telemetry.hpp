// telemetry.hpp — the runtime on/off switch of the observability layer.
//
// Everything under src/telemetry/ is gated by one process-wide flag:
//
//   * the environment variable CHAMBOLLE_TELEMETRY ("1"/"on"/"true" enables,
//     "0"/"off"/"false"/unset disables) read lazily on first query;
//   * the programmatic override set_enabled(), which wins over the env var.
//
// The disabled fast path is a single relaxed atomic load and branch, so
// instrumented hot loops cost (almost) nothing when observability is off.
// Building with -DCHAMBOLLE_ENABLE_TELEMETRY=OFF (CMake option) defines
// CHAMBOLLE_TELEMETRY_DISABLED and compiles the layer down to constants.
#pragma once

#include <atomic>

namespace chambolle::telemetry {

namespace detail {
extern std::atomic<int> g_enabled;  ///< -1 = uninitialized, 0 = off, 1 = on
/// Resolves the initial state from CHAMBOLLE_TELEMETRY; returns the state.
int init_from_env();
}  // namespace detail

/// True when telemetry collection is on.  O(1), safe from any thread.
inline bool enabled() {
#ifdef CHAMBOLLE_TELEMETRY_DISABLED
  return false;
#else
  const int v = detail::g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) [[likely]]
    return v == 1;
  return detail::init_from_env() == 1;
#endif
}

/// Programmatic override of the env-var default.  A no-op in
/// CHAMBOLLE_TELEMETRY_DISABLED builds.
void set_enabled(bool on);

}  // namespace chambolle::telemetry
