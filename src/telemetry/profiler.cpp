#include "telemetry/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "telemetry/json_util.hpp"
#include "telemetry/trace.hpp"

namespace chambolle::telemetry {
namespace detail {

std::atomic<int> g_profiler_active{0};

namespace {
thread_local int t_lane = -1;
}  // namespace

}  // namespace detail

const char* lane_cause_name(LaneCause c) {
  switch (c) {
    case LaneCause::kKernel:
      return "kernel";
    case LaneCause::kEpochWait:
      return "epoch_wait";
    case LaneCause::kBarrierWait:
      return "barrier_wait";
    case LaneCause::kMailbox:
      return "mailbox";
    case LaneCause::kIdle:
      return "idle";
  }
  return "unknown";
}

int profiler_set_lane(int lane) {
  const int prev = detail::t_lane;
  detail::t_lane = lane;
  return prev;
}

int profiler_lane() { return detail::t_lane; }

void profiler_add(LaneCause cause, double seconds) {
  if (!profiler_active() || cause == LaneCause::kIdle || seconds <= 0.0)
    return;
  const int lane = detail::t_lane;
  Profiler& p = Profiler::instance();
  if (lane < 0 || lane >= static_cast<int>(p.lane_slots_.size())) return;
  Profiler::LaneSlot& slot = p.lane_slots_[static_cast<std::size_t>(lane)];
  const int c = static_cast<int>(cause);
  slot.ns[c].fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
  slot.events[c].fetch_add(1, std::memory_order_relaxed);
}

void profiler_add_tile(int tile, double seconds) {
  if (!profiler_active() || seconds < 0.0) return;
  Profiler& p = Profiler::instance();
  if (tile < 0 || tile >= static_cast<int>(p.tile_slots_.size())) return;
  Profiler::TileSlot& slot = p.tile_slots_[static_cast<std::size_t>(tile)];
  slot.ns.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                    std::memory_order_relaxed);
  slot.passes.fetch_add(1, std::memory_order_relaxed);
}

ProfScope::ProfScope(LaneCause cause) {
  if (profiler_active()) {
    cause_ = static_cast<std::int32_t>(cause);
    start_ns_ = detail::trace_now_ns();
  }
}

ProfScope::~ProfScope() {
  if (cause_ >= 0) {
    const std::uint64_t end = detail::trace_now_ns();
    profiler_add(static_cast<LaneCause>(cause_),
                 static_cast<double>(end - start_ns_) * 1e-9);
  }
}

double UtilizationReport::busy_fraction() const {
  if (lanes.empty() || wall_seconds <= 0.0) return 0.0;
  double busy = 0.0;
  for (const LaneUsage& l : lanes)
    busy += l.seconds[static_cast<int>(LaneCause::kKernel)];
  return busy / (wall_seconds * static_cast<double>(lanes.size()));
}

double UtilizationReport::imbalance_ratio() const {
  if (lanes.empty()) return 0.0;
  double max_busy = 0.0, sum_busy = 0.0;
  for (const LaneUsage& l : lanes) {
    const double b = l.seconds[static_cast<int>(LaneCause::kKernel)];
    max_busy = std::max(max_busy, b);
    sum_busy += b;
  }
  const double mean = sum_busy / static_cast<double>(lanes.size());
  return mean > 0.0 ? max_busy / mean : 0.0;
}

double UtilizationReport::total_seconds(LaneCause cause) const {
  double s = 0.0;
  for (const LaneUsage& l : lanes) s += l.seconds[static_cast<int>(cause)];
  return s;
}

std::string UtilizationReport::to_json() const {
  std::string out = "{\n  \"wall_seconds\": " + json_number(wall_seconds);
  out += ",\n  \"lanes\": [";
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\"lane\": " + json_number(static_cast<std::int64_t>(i));
    for (int c = 0; c < kLaneCauseCount; ++c) {
      out += ", ";
      json_append_escaped(out, std::string(lane_cause_name(
                                   static_cast<LaneCause>(c))) +
                                   "_seconds");
      out += ": " + json_number(lanes[i].seconds[c]);
    }
    for (int c = 0; c < kLaneCauseCount; ++c) {
      if (c == static_cast<int>(LaneCause::kIdle)) continue;
      out += ", ";
      json_append_escaped(out, std::string(lane_cause_name(
                                   static_cast<LaneCause>(c))) +
                                   "_events");
      out += ": " + json_number(lanes[i].events[c]);
    }
    out += "}";
  }
  out += "\n  ],\n  \"summary\": {";
  out += "\n    \"busy_fraction\": " + json_number(busy_fraction());
  out += ",\n    \"imbalance_ratio\": " + json_number(imbalance_ratio());
  for (int c = 0; c < kLaneCauseCount; ++c) {
    out += ",\n    ";
    json_append_escaped(
        out,
        std::string(lane_cause_name(static_cast<LaneCause>(c))) + "_seconds");
    out += ": " + json_number(total_seconds(static_cast<LaneCause>(c)));
  }
  out += "\n  },\n  \"tiles\": [";
  bool first = true;
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    if (tiles[t].passes == 0) continue;
    out += first ? "\n    {" : ",\n    {";
    first = false;
    out += "\"tile\": " + json_number(static_cast<std::int64_t>(t));
    out += ", \"passes\": " + json_number(tiles[t].passes);
    out += ", \"kernel_seconds\": " + json_number(tiles[t].seconds) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string UtilizationReport::to_table() const {
  char buf[256];
  std::string out;
  out += "lane     kernel  epoch_w  barr_w  mailbox    idle   util%\n";
  const auto row = [&](const char* label, const double s[kLaneCauseCount],
                       double wall) {
    const double util =
        wall > 0.0 ? 100.0 * s[static_cast<int>(LaneCause::kKernel)] / wall
                   : 0.0;
    std::snprintf(buf, sizeof buf,
                  "%-6s %8.3f %8.3f %7.3f %8.3f %7.3f  %5.1f%%\n", label,
                  1e3 * s[0], 1e3 * s[1], 1e3 * s[2], 1e3 * s[3], 1e3 * s[4],
                  util);
    out += buf;
  };
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    char label[16];
    std::snprintf(label, sizeof label, "%zu", i);
    row(label, lanes[i].seconds, wall_seconds);
  }
  double totals[kLaneCauseCount] = {0, 0, 0, 0, 0};
  for (const LaneUsage& l : lanes)
    for (int c = 0; c < kLaneCauseCount; ++c) totals[c] += l.seconds[c];
  row("all", totals, wall_seconds * static_cast<double>(lanes.size()));
  std::snprintf(buf, sizeof buf,
                "wall %.3f ms, busy fraction %.2f, imbalance %.2f "
                "(times in ms)\n",
                1e3 * wall_seconds, busy_fraction(), imbalance_ratio());
  out += buf;
  return out;
}

Profiler& Profiler::instance() {
  static Profiler* p = new Profiler();  // leaked: outlives exit
  return *p;
}

namespace {
// Raw session flag, independent of the CHAMBOLLE_TELEMETRY_DISABLED constant
// fold: in disabled builds sessions still begin/end (returning an all-idle
// report) while every record path compiles to nothing.
bool session_active() {
  return detail::g_profiler_active.load(std::memory_order_acquire) != 0;
}
}  // namespace

void Profiler::begin(int lanes, int max_tiles) {
  if (session_active())
    throw std::logic_error("Profiler::begin: a session is already active");
  if (lanes < 1) lanes = 1;
  if (max_tiles < 0) max_tiles = 0;
  lane_slots_.clear();
  tile_slots_.clear();
  // vector growth value-initializes the atomics (all zero).
  lane_slots_ = std::vector<LaneSlot>(static_cast<std::size_t>(lanes));
  tile_slots_ = std::vector<TileSlot>(static_cast<std::size_t>(max_tiles));
  session_start_ns_ = detail::trace_now_ns();
  // Release: the sized vectors must be visible before any recorder sees the
  // active flag.
  detail::g_profiler_active.store(1, std::memory_order_release);
}

UtilizationReport Profiler::end() {
  if (!session_active())
    throw std::logic_error("Profiler::end: no active session");
  const std::uint64_t end_ns = detail::trace_now_ns();
  detail::g_profiler_active.store(0, std::memory_order_release);

  UtilizationReport r;
  r.wall_seconds = static_cast<double>(end_ns - session_start_ns_) * 1e-9;
  r.lanes.resize(lane_slots_.size());
  for (std::size_t i = 0; i < lane_slots_.size(); ++i) {
    LaneUsage& u = r.lanes[i];
    for (int c = 0; c < kLaneCauseCount - 1; ++c) {
      u.seconds[c] = static_cast<double>(
                         lane_slots_[i].ns[c].load(std::memory_order_relaxed)) *
                     1e-9;
      u.events[c] = lane_slots_[i].events[c].load(std::memory_order_relaxed);
    }
    // Idle is the residual, clamped: attributed time can exceed wall only by
    // clock-granularity rounding, which must not yield negative idle.
    u.seconds[static_cast<int>(LaneCause::kIdle)] =
        std::max(0.0, r.wall_seconds - u.attributed());
  }
  for (std::size_t t = 0; t < tile_slots_.size(); ++t) {
    const std::uint64_t passes =
        tile_slots_[t].passes.load(std::memory_order_relaxed);
    if (passes == 0) continue;
    if (r.tiles.size() <= t) r.tiles.resize(t + 1);
    r.tiles[t].passes = passes;
    r.tiles[t].seconds =
        static_cast<double>(tile_slots_[t].ns.load(std::memory_order_relaxed)) *
        1e-9;
  }
  return r;
}

void Profiler::cancel() {
  detail::g_profiler_active.store(0, std::memory_order_release);
}

}  // namespace chambolle::telemetry
