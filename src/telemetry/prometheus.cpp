#include "telemetry/prometheus.hpp"

#include <cctype>

#include "telemetry/json_util.hpp"
#include "telemetry/metrics.hpp"

namespace chambolle::telemetry {

std::string prometheus_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char ch : name) {
    const unsigned char c = static_cast<unsigned char>(ch);
    out.push_back(std::isalnum(c) != 0 || ch == '_' || ch == ':'
                      ? static_cast<char>(ch)
                      : '_');
  }
  if (out.empty()) out = "_";
  if (std::isdigit(static_cast<unsigned char>(out.front())) != 0)
    out.insert(out.begin(), '_');
  return out;
}

namespace {

// Prometheus floats: plain decimal or exponent notation; json_number()'s
// output is compatible except for "null" (non-finite), which Prometheus
// spells "NaN".
std::string prom_number(double v) {
  const std::string s = json_number(v);
  return s == "null" ? "NaN" : s;
}

void emit_metric(std::string& out, const std::string& name, const char* type,
                 const std::string& value) {
  out += "# TYPE " + name + " " + type + "\n";
  out += name + " " + value + "\n";
}

}  // namespace

std::string prometheus_text() {
  std::string out;
  MetricRegistry& reg = registry();

  for (const auto& [name, value] : reg.counters_snapshot())
    emit_metric(out, prometheus_metric_name(name) + "_total", "counter",
                std::to_string(value));

  for (const auto& [name, value] : reg.gauges_snapshot())
    emit_metric(out, prometheus_metric_name(name), "gauge", prom_number(value));

  for (const auto& h : reg.histograms_snapshot()) {
    const std::string name = prometheus_metric_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      out += name + "_bucket{le=\"" + prom_number(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_sum " + prom_number(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
    emit_metric(out, name + "_p50", "gauge", prom_number(h.p50));
    emit_metric(out, name + "_p95", "gauge", prom_number(h.p95));
    emit_metric(out, name + "_p99", "gauge", prom_number(h.p99));
  }
  return out;
}

bool write_prometheus(const std::string& path) {
  return write_text_file(path, prometheus_text());
}

}  // namespace chambolle::telemetry
