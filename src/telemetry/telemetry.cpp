#include "telemetry/telemetry.hpp"

#include <cstdlib>
#include <cstring>

namespace chambolle::telemetry {

namespace detail {

std::atomic<int> g_enabled{-1};

int init_from_env() {
  const char* env = std::getenv("CHAMBOLLE_TELEMETRY");
  int v = 0;
  if (env != nullptr) {
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
        std::strcmp(env, "true") == 0 || std::strcmp(env, "yes") == 0)
      v = 1;
  }
  // First writer wins; a concurrent set_enabled() may already have stored.
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace detail

void set_enabled(bool on) {
#ifdef CHAMBOLLE_TELEMETRY_DISABLED
  (void)on;
#else
  detail::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
#endif
}

}  // namespace chambolle::telemetry
