#include "telemetry/metrics.hpp"

#include <stdexcept>

#include "telemetry/json_util.hpp"

namespace chambolle::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument("Histogram: bounds must increase strictly");
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return buckets_.at(i).load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> default_ms_bounds() {
  return {0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0};
}

MetricRegistry& MetricRegistry::instance() {
  static MetricRegistry* reg = new MetricRegistry();  // leaked: outlives exit
  return *reg;
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0)
    throw std::logic_error("MetricRegistry: '" + name +
                           "' already registered as another kind");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0)
    throw std::logic_error("MetricRegistry: '" + name +
                           "' already registered as another kind");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0)
    throw std::logic_error("MetricRegistry: '" + name +
                           "' already registered as another kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    // Construct before inserting: the Histogram ctor validates the bounds
    // and may throw, which must not leave a null entry behind.
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

std::string MetricRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_escaped(out, name);
    out += ": " + json_number(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_escaped(out, name);
    out += ": " + json_number(g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_escaped(out, name);
    out += ": {\"bounds\": [";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      if (i != 0) out += ", ";
      out += json_number(h->bounds()[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i != 0) out += ", ";
      out += json_number(h->bucket_count(i));
    }
    out += "], \"count\": " + json_number(h->total_count());
    out += ", \"sum\": " + json_number(h->sum()) + "}";
  }
  out += "\n  }\n}\n";
  return out;
}

bool MetricRegistry::write_json(const std::string& path) const {
  return write_text_file(path, snapshot_json());
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace chambolle::telemetry
