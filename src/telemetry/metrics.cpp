#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/json_util.hpp"

namespace chambolle::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1) {
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    // Non-finite bounds would pass a pure <=-previous check (every NaN
    // comparison is false) and then corrupt bucketing and the quantile lerp.
    if (!std::isfinite(bounds_[i]))
      throw std::invalid_argument("Histogram: bounds must be finite");
    if (i > 0 && bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument("Histogram: bounds must increase strictly");
  }
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  if (!std::isfinite(v)) return;  // see header: non-finite is dropped
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return buckets_.at(i).load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = total_count();
  if (total == 0) return 0.0;
  // !(q >= 0) also catches NaN, which `q < 0` would pass through and turn
  // the rank (and every comparison below) into garbage.
  if (!(q >= 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket =
        buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i == bounds_.size())  // overflow bucket: no upper edge to lerp to
        return bounds_.empty() ? 0.0 : bounds_.back();
      const double hi = bounds_[i];
      // Lower edge: previous bound, or (for the first bucket) 0 unless the
      // bound itself is negative.
      const double lo = i > 0 ? bounds_[i - 1] : std::min(0.0, hi);
      const double frac =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> default_ms_bounds() {
  return {0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0};
}

MetricRegistry& MetricRegistry::instance() {
  static MetricRegistry* reg = new MetricRegistry();  // leaked: outlives exit
  return *reg;
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0)
    throw std::logic_error("MetricRegistry: '" + name +
                           "' already registered as another kind");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0)
    throw std::logic_error("MetricRegistry: '" + name +
                           "' already registered as another kind");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0)
    throw std::logic_error("MetricRegistry: '" + name +
                           "' already registered as another kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    // Construct before inserting: the Histogram ctor validates the bounds
    // and may throw, which must not leave a null entry behind.
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

std::string MetricRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_escaped(out, name);
    out += ": " + json_number(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_escaped(out, name);
    out += ": " + json_number(g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_escaped(out, name);
    out += ": {\"bounds\": [";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      if (i != 0) out += ", ";
      out += json_number(h->bounds()[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i != 0) out += ", ";
      out += json_number(h->bucket_count(i));
    }
    out += "], \"count\": " + json_number(h->total_count());
    out += ", \"sum\": " + json_number(h->sum());
    out += ", \"p50\": " + json_number(h->quantile(0.50));
    out += ", \"p95\": " + json_number(h->quantile(0.95));
    out += ", \"p99\": " + json_number(h->quantile(0.99)) + "}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricRegistry::counters_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricRegistry::gauges_snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<MetricRegistry::HistogramSnapshot>
MetricRegistry::histograms_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s;
    s.name = name;
    s.bounds = h->bounds();
    s.buckets.resize(s.bounds.size() + 1);
    for (std::size_t i = 0; i <= s.bounds.size(); ++i)
      s.buckets[i] = h->bucket_count(i);
    s.count = h->total_count();
    s.sum = h->sum();
    s.p50 = h->quantile(0.50);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    out.push_back(std::move(s));
  }
  return out;
}

bool MetricRegistry::write_json(const std::string& path) const {
  return write_text_file(path, snapshot_json());
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace chambolle::telemetry
