// metrics.hpp — the process-wide metric registry.
//
// Named counters, gauges, and fixed-bucket histograms with O(1) lock-free
// hot-path updates (one relaxed atomic RMW plus the telemetry::enabled()
// branch).  Registration (name lookup) takes a mutex and should be hoisted
// out of hot loops: call registry().counter("x") once, keep the reference.
//
// Naming convention (docs/observability.md): dot-separated lowercase paths,
// subsystem first — "chambolle.solver.iterations", "hw.bram.reads",
// "tvl1.warps".  snapshot_json() serializes every registered metric, so one
// dump compares software and simulated-hardware runs side by side.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace chambolle::telemetry {

/// Monotonic counter.  add() is a no-op while telemetry is disabled.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value-wins gauge.
class Gauge {
 public:
  void set(double v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// overflow bucket counts the rest.  Bounds are set at registration and
/// immutable afterwards, so observe() is bounds.size() compares plus one
/// relaxed increment — no locks.
class Histogram {
 public:
  /// Bounds must be finite and strictly increasing (NaN/inf bounds would
  /// silently break bucketing and quantile lerp; rejected with
  /// std::invalid_argument).
  explicit Histogram(std::vector<double> upper_bounds);

  /// Records one observation.  Non-finite values are DROPPED (not counted):
  /// a NaN would otherwise land in the lowest bucket (every comparison is
  /// false) and poison sum() forever, and an inf would make sum() useless
  /// while reporting as the last finite bound anyway.
  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  [[nodiscard]] std::uint64_t total_count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Estimates the q-quantile (q in [0, 1]) from the bucket counts by linear
  /// interpolation inside the bucket that holds the target rank.  The
  /// overflow bucket has no upper edge, so anything landing there reports the
  /// last finite bound — an underestimate by construction, same convention as
  /// Prometheus histogram_quantile.  Returns 0 for an empty histogram;
  /// out-of-range and NaN q clamp to the nearest valid quantile (NaN -> 0).
  [[nodiscard]] double quantile(double q) const;

  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bounds for millisecond-scale durations.
[[nodiscard]] std::vector<double> default_ms_bounds();

class MetricRegistry {
 public:
  /// The process-wide registry used by all instrumentation in this repo.
  static MetricRegistry& instance();

  /// Finds or creates the metric.  References stay valid for the registry's
  /// lifetime.  A name registered as one kind cannot be re-registered as
  /// another (throws std::logic_error).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds = default_ms_bounds());

  /// JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  /// Histograms serialize bounds, per-bucket counts, total count, sum, and
  /// derived p50/p95/p99 quantile estimates.
  [[nodiscard]] std::string snapshot_json() const;

  /// Point-in-time copies for exporters that need to enumerate the registry
  /// (the Prometheus renderer).  Name-sorted, values read relaxed.
  struct HistogramSnapshot {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counters_snapshot() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges_snapshot()
      const;
  [[nodiscard]] std::vector<HistogramSnapshot> histograms_snapshot() const;

  /// Writes snapshot_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Zeroes every metric's value; registrations (and references) survive.
  void reset();

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricRegistry::instance().
[[nodiscard]] inline MetricRegistry& registry() {
  return MetricRegistry::instance();
}

/// Prefix-scoped view of a registry: every metric name is rewritten to
/// "<prefix>.<name>" at registration.  This is how concurrent streams get
/// non-interleaved metrics without a registry per stream — the serving layer
/// hands each session a ScopedMetrics("serving.session.<id>") while the
/// unscoped names keep the process-wide aggregate.  Cheap to copy; holds no
/// state beyond the prefix and the registry pointer.  The usual hoisting
/// advice applies: resolve counter()/gauge()/histogram() once, keep the
/// reference.
class ScopedMetrics {
 public:
  /// An empty prefix degenerates to the plain registry (names unchanged).
  explicit ScopedMetrics(std::string prefix,
                         MetricRegistry& reg = registry())
      : prefix_(std::move(prefix)), registry_(&reg) {}

  [[nodiscard]] Counter& counter(const std::string& name) const {
    return registry_->counter(scoped(name));
  }
  [[nodiscard]] Gauge& gauge(const std::string& name) const {
    return registry_->gauge(scoped(name));
  }
  [[nodiscard]] Histogram& histogram(
      const std::string& name,
      std::vector<double> upper_bounds = default_ms_bounds()) const {
    return registry_->histogram(scoped(name), std::move(upper_bounds));
  }

  [[nodiscard]] const std::string& prefix() const { return prefix_; }
  /// The full name `name` resolves to under this scope.
  [[nodiscard]] std::string scoped(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "." + name;
  }

 private:
  std::string prefix_;
  MetricRegistry* registry_;
};

}  // namespace chambolle::telemetry
