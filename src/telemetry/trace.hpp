// trace.hpp — RAII tracing spans with Chrome trace-event export.
//
// TraceSpan measures a scope and records a complete ("X") event into a
// per-thread ring buffer on destruction.  The buffers are written without
// locks by their owning thread (one relaxed index publish per event); the
// exporter takes only the registration mutex and should be called at a
// quiescent point (after joining workers), which is how every call site in
// this repo uses it.  Buffers outlive their threads, so spans recorded by
// short-lived worker pools (the tiled solver) survive into the export.
//
// Export format: the Chrome trace-event JSON object form
// ({"traceEvents": [...]}), loadable in chrome://tracing and Perfetto.
// Nesting is implied by timestamp containment of "X" events on one tid;
// every span also carries its lexical depth as args.depth.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "telemetry/telemetry.hpp"

namespace chambolle::telemetry {

namespace detail {

struct TraceEvent {
  char name[48];
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::int32_t depth;
};

struct ThreadTraceBuffer;

/// The calling thread's buffer, registered globally on first use.
ThreadTraceBuffer& local_trace_buffer();

/// Records one finished span into the calling thread's ring buffer.
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::int32_t depth);

/// Nanoseconds since the process-wide trace epoch (steady clock).
[[nodiscard]] std::uint64_t trace_now_ns();

/// Enters/leaves one nesting level on the calling thread; enter returns the
/// depth the span runs at (0 = outermost).
std::int32_t span_enter();
void span_leave();

}  // namespace detail

/// Scoped timer.  `name` must outlive the span (string literals in practice).
/// When telemetry is disabled at construction the span is inert: no clock
/// read, no buffer access, no record.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (enabled()) {
      name_ = name;
      depth_ = detail::span_enter();
      start_ns_ = detail::trace_now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      const std::uint64_t end = detail::trace_now_ns();
      detail::span_leave();
      detail::record_span(name_, start_ns_, end, depth_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Whether this span is recording (telemetry was on at construction).
  [[nodiscard]] bool active() const { return name_ != nullptr; }

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::int32_t depth_ = 0;
};

/// Serializes every recorded span as Chrome trace-event JSON.
[[nodiscard]] std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// Discards all recorded spans (buffer registrations survive).
void clear_trace();

/// Spans overwritten because a thread's ring buffer wrapped.
[[nodiscard]] std::uint64_t trace_events_overwritten();

/// Spans currently held across all thread buffers.
[[nodiscard]] std::size_t trace_event_count();

}  // namespace chambolle::telemetry
