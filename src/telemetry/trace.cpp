#include "telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/json_util.hpp"

namespace chambolle::telemetry {
namespace detail {
namespace {

using steady = std::chrono::steady_clock;

constexpr std::size_t kRingCapacity = 1 << 15;  // 32768 spans per thread

steady::time_point trace_epoch() {
  static const steady::time_point epoch = steady::now();
  return epoch;
}

}  // namespace

struct ThreadTraceBuffer {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> ring{kRingCapacity};
  /// Total events ever written; slot (head - 1) % capacity holds the newest.
  /// Written by the owning thread, read by the exporter.
  std::atomic<std::uint64_t> head{0};
  std::int32_t depth = 0;  // owning thread only
};

namespace {

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

BufferRegistry& buffer_registry() {
  static BufferRegistry* reg = new BufferRegistry();  // leaked: outlives exit
  return *reg;
}

struct ExportEvent {
  TraceEvent ev;
  std::uint32_t tid;
};

std::vector<ExportEvent> snapshot_events() {
  std::vector<ExportEvent> out;
  BufferRegistry& reg = buffer_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& buf : reg.buffers) {
    const std::uint64_t h = buf->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(h, kRingCapacity);
    for (std::uint64_t i = h - n; i < h; ++i)
      out.push_back({buf->ring[i % kRingCapacity], buf->tid});
  }
  std::sort(out.begin(), out.end(),
            [](const ExportEvent& a, const ExportEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ev.start_ns != b.ev.start_ns)
                return a.ev.start_ns < b.ev.start_ns;
              return a.ev.dur_ns > b.ev.dur_ns;  // parents before children
            });
  return out;
}

}  // namespace

ThreadTraceBuffer& local_trace_buffer() {
  thread_local std::shared_ptr<ThreadTraceBuffer> buf = [] {
    auto b = std::make_shared<ThreadTraceBuffer>();
    BufferRegistry& reg = buffer_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    b->tid = reg.next_tid++;
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::int32_t depth) {
  ThreadTraceBuffer& buf = local_trace_buffer();
  const std::uint64_t h = buf.head.load(std::memory_order_relaxed);
  TraceEvent& ev = buf.ring[h % kRingCapacity];
  std::strncpy(ev.name, name, sizeof ev.name - 1);
  ev.name[sizeof ev.name - 1] = '\0';
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.depth = depth;
  buf.head.store(h + 1, std::memory_order_release);
  // Mirror into the crash flight recorder: a postmortem dump then carries
  // the span timeline whenever tracing was on.
  flight_span(name, start_ns, ev.dur_ns);
}

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(steady::now() -
                                                           trace_epoch())
          .count());
}

std::int32_t span_enter() { return local_trace_buffer().depth++; }
void span_leave() { --local_trace_buffer().depth; }

}  // namespace detail

std::string chrome_trace_json() {
  const auto events = detail::snapshot_events();
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  std::uint32_t last_tid = 0;  // thread-name metadata, once per tid
  for (const auto& e : events) {
    if (e.tid != last_tid) {
      last_tid = e.tid;
      out += first ? "" : ",\n";
      first = false;
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
             std::to_string(e.tid) +
             ",\"args\":{\"name\":\"chambolle-thread-" +
             std::to_string(e.tid) + "\"}}";
    }
    out += first ? "" : ",\n";
    first = false;
    out += "{\"name\":";
    json_append_escaped(out, e.ev.name);
    out += ",\"cat\":\"chambolle\",\"ph\":\"X\",\"ts\":" +
           json_number(static_cast<double>(e.ev.start_ns) / 1000.0) +
           ",\"dur\":" +
           json_number(static_cast<double>(e.ev.dur_ns) / 1000.0) +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"args\":{\"depth\":" + std::to_string(e.ev.depth) + "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  return write_text_file(path, chrome_trace_json());
}

void clear_trace() {
  auto& reg = detail::buffer_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& buf : reg.buffers)
    buf->head.store(0, std::memory_order_release);
}

std::uint64_t trace_events_overwritten() {
  auto& reg = detail::buffer_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t dropped = 0;
  for (const auto& buf : reg.buffers) {
    const std::uint64_t h = buf->head.load(std::memory_order_acquire);
    if (h > detail::kRingCapacity) dropped += h - detail::kRingCapacity;
  }
  return dropped;
}

std::size_t trace_event_count() { return detail::snapshot_events().size(); }

}  // namespace chambolle::telemetry
