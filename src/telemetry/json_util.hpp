// json_util.hpp — minimal JSON writing helpers shared by the telemetry
// exporters.  Dependency-free: the telemetry layer must not pull a JSON
// library into a repo that otherwise has none.
#pragma once

#include <cstdint>
#include <string>

namespace chambolle::telemetry {

/// Appends `s` to `out` as a JSON string literal (quotes + escapes).
void json_append_escaped(std::string& out, const std::string& s);

/// Formats a double the way JSON expects: finite values with enough digits
/// to round-trip, non-finite values as null.
[[nodiscard]] std::string json_number(double v);

[[nodiscard]] std::string json_number(std::uint64_t v);
[[nodiscard]] std::string json_number(std::int64_t v);

/// Strict recursive-descent check that `s` is one complete JSON value
/// (object/array/string/number/true/false/null) with nothing but whitespace
/// after it.  Exists so tests can assert every exported artifact parses —
/// the escaping-audit fuzz test round-trips hostile names through the
/// exporters and feeds the output here.
[[nodiscard]] bool json_well_formed(const std::string& s);

/// Writes `content` to `path`; returns false (without throwing) on I/O error.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace chambolle::telemetry
