// bench_diff.hpp — noise-aware comparison of two BENCH_*.json reports.
//
// The CI perf-regression gate: given a base report and a PR report produced
// by the same bench binary, compare every repeated-measurement median
// (`<stem>_ms_median` keys emitted by append_repeat_stats) and classify each
// as unchanged / improvement / regression / missing.  The decision threshold
// is noise-aware: a key only regresses when the median moved by more than
//
//   max(fixed relative threshold,  noise_mult * (base MAD + PR MAD) / base)
//
// so a benchmark whose own repeats scatter by 8% cannot trip a 10% gate on
// scheduler luck, while a tight benchmark still gets the full sensitivity of
// the fixed threshold.  All `_ms` keys are lower-is-better.
//
// The library half lives here (unit-testable on synthetic reports); the CLI
// half is tools/bench_diff.cpp, which exits 0 on pass, 1 on regression,
// 2 on usage/parse errors.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace chambolle::telemetry {

/// Parsed essentials of one BENCH_*.json: its name and the flat string
/// params map (stats keys included).  Returns false on malformed input.
struct BenchReport {
  std::string name;
  double wall_ms = 0.0;
  std::map<std::string, std::string> params;
};
[[nodiscard]] bool parse_bench_report(const std::string& json,
                                      BenchReport* out);

enum class DiffStatus : int {
  kUnchanged = 0,
  kImprovement,
  kRegression,
  kMissing,  ///< key present on one side only — reported, never fatal
};
[[nodiscard]] const char* diff_status_name(DiffStatus s);

struct BenchDiffOptions {
  double threshold = 0.10;  ///< fixed relative regression threshold
  double noise_mult = 3.0;  ///< MADs of combined noise a move must exceed
  /// Assumed relative noise of a side whose `<stem>_n` is 1: a single
  /// sample's MAD is identically 0, which would silently collapse the
  /// noise-aware threshold to the fixed floor — exactly the reports with
  /// the LEAST statistical backing.  8% is the upper range of observed
  /// repeat scatter on the CI runners.
  double single_sample_noise = 0.08;
};

/// One compared measurement (the `<stem>` of `<stem>_median`).
struct KeyDiff {
  std::string key;
  double base_median = 0.0;
  double pr_median = 0.0;
  double delta = 0.0;      ///< (pr - base) / base; positive is slower
  double threshold = 0.0;  ///< the effective (noise-widened) threshold used
  DiffStatus status = DiffStatus::kUnchanged;
};

struct BenchDiffResult {
  std::vector<KeyDiff> keys;

  [[nodiscard]] bool has_regression() const;
  /// Machine-readable verdict object (consumed by the CI gate).
  [[nodiscard]] std::string to_json() const;
  /// Human-readable table for the job log.
  [[nodiscard]] std::string to_table() const;
};

/// Diffs every `*_ms` timing median common to both reports.
[[nodiscard]] BenchDiffResult bench_diff(const BenchReport& base,
                                         const BenchReport& pr,
                                         const BenchDiffOptions& opts = {});

}  // namespace chambolle::telemetry
