// flight_recorder.hpp — the crash flight recorder.
//
// A bounded, lock-free ring of recent events per thread, cheap enough to
// leave on in production runs, dumped to a postmortem JSON either on demand
// or by a signal handler when the process crashes (SIGSEGV / SIGABRT /
// SIGFPE / SIGBUS) — so an oracle or fuzzer crash comes with a timeline of
// what every thread was doing in its last moments, not just a stack.
//
// Event sources:
//   * flight_mark(name, value) — explicit breadcrumbs at key points (solve
//     entries, pass publishes, oracle case seeds, fuzz input ids);
//   * every finished TraceSpan is mirrored in (trace.cpp), so when telemetry
//     tracing is also on the flight ring carries the span timeline for free.
//
// Unlike the rest of the telemetry layer the recorder is ON by default
// (that is its point: the crash you did not plan for); disable with
// CHAMBOLLE_FLIGHT=0 or set_flight_recorder_enabled(false).  The disabled
// path is one relaxed atomic load and a branch.  Rings hold the last
// kFlightRingCapacity events per thread; older events are overwritten.
//
// The crash handler only uses async-signal-safe primitives: rings register
// into a fixed lock-free table (no mutex to deadlock on), the dump is
// formatted with local integer formatting into a stack buffer and written
// with write(2).  It is best-effort by nature — a crash can corrupt
// anything — but the rings are plain memory owned by healthy threads, so in
// practice the timeline survives.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "telemetry/telemetry.hpp"

namespace chambolle::telemetry {

inline constexpr std::size_t kFlightRingCapacity = 256;  // events per thread
inline constexpr int kFlightMaxThreads = 256;

namespace detail {
extern std::atomic<int> g_flight_enabled;  ///< -1 uninit, 0 off, 1 on
int flight_init_from_env();
}  // namespace detail

/// True when the recorder is collecting.  Defaults to ON; CHAMBOLLE_FLIGHT=0
/// (or "off"/"false") disables, set_flight_recorder_enabled() overrides.
inline bool flight_recorder_enabled() {
#ifdef CHAMBOLLE_TELEMETRY_DISABLED
  return false;
#else
  const int v = detail::g_flight_enabled.load(std::memory_order_relaxed);
  if (v >= 0) [[likely]]
    return v == 1;
  return detail::flight_init_from_env() == 1;
#endif
}

void set_flight_recorder_enabled(bool on);

/// Records one breadcrumb on the calling thread's ring: `name` (truncated to
/// the fixed event width) and a free-form numeric value.  Lock-free; no-op
/// while disabled.
void flight_mark(const char* name, double value = 0.0);

/// Same, with an explicit duration — the TraceSpan mirror path.
void flight_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns);

// QUIESCENT-READER CONTRACT — flight_event_count / clear_flight_record /
// flight_record_json / write_flight_record.  The rings are single-writer
// lock-free for the benefit of the CRASH path, whose best-effort dump
// tolerates a torn in-flight slot.  The ordinary readers below do NOT: they
// walk slots without per-event validation, and a recording thread can lap a
// full ring (overwrite the oldest slot) while a reader is mid-walk, which
// would be a data race.  Call them only when no thread is concurrently
// recording — between solves / after the pool quiesces, the same contract
// as the profiler's report accessors — never from inside a running region.
// Every in-repo call site (tests, flow_cli after the solve) satisfies this.

/// Events currently held across all rings (capped per thread).  Quiescent
/// readers only — see the contract above.
[[nodiscard]] std::size_t flight_event_count();

/// Discards all recorded events (ring registrations survive).  Quiescent
/// readers only — see the contract above.
void clear_flight_record();

/// Serializes every ring, oldest first per thread, as a JSON object:
/// {"flight_recorder": {"events": [{"t_us":…, "tid":…, "name":…,
/// "value":…, "dur_us":…}, …]}}.  Normal (non-signal) code path; quiescent
/// readers only — see the contract above.
[[nodiscard]] std::string flight_record_json();

/// Writes flight_record_json() to `path`; false on I/O failure.  Quiescent
/// readers only — see the contract above.
bool write_flight_record(const std::string& path);

/// Installs the crash handler for SIGSEGV, SIGABRT, SIGFPE and SIGBUS.  On
/// delivery it dumps the rings to `path` (async-signal-safe writer), then
/// restores the default disposition and re-raises so the exit status and
/// core dump are unchanged.  `path` is copied at install time; nullptr uses
/// $CHAMBOLLE_FLIGHT_DUMP, falling back to "flight_record.json" in the
/// working directory.  Idempotent; later calls replace the path.
void install_crash_handler(const char* path = nullptr);

/// The async-signal-safe dump the handler runs, callable directly (tests,
/// "dump now" tooling): formats with no allocation and writes with write(2).
/// Returns false if the file could not be opened.
bool flight_crash_dump(const char* path);

}  // namespace chambolle::telemetry
