// hw_accelerator — drives the cycle-level FPGA simulator on one Chambolle
// solve, checks it against the software fixed-point solver, and prints the
// per-frame cycle budget, memory traffic and the projected frame rate at the
// paper's 221 MHz clock, together with the resource footprint (Table I).
//
// Usage: hw_accelerator [frame_size] [iterations]   (defaults: 128 50)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "chambolle/fixed_solver.hpp"
#include "common/rng.hpp"
#include "common/text_table.hpp"
#include "hw/accelerator.hpp"
#include "hw/datasheet.hpp"
#include "hw/resource_model.hpp"
#include "hw/schedule.hpp"

int main(int argc, char** argv) {
  using namespace chambolle;
  const int n = argc > 1 ? std::atoi(argv[1]) : 128;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 50;
  if (n < 8 || iterations < 1) {
    std::fprintf(stderr, "usage: hw_accelerator [frame_size>=8] [iters>=1]\n");
    return 2;
  }

  Rng rng(7);
  FlowField v(n, n);
  v.u1 = random_image(rng, n, n, -2.f, 2.f);
  v.u2 = random_image(rng, n, n, -2.f, 2.f);

  ChambolleParams params;
  params.iterations = iterations;

  const hw::ArchConfig cfg;  // the paper's configuration
  hw::ChambolleAccelerator accel(cfg);
  const auto result = accel.solve(v, params);

  // Cross-check against the plain software fixed-point solver.
  const ChambolleResult ref = solve_fixed(v.u1, params);
  const bool exact = result.u.u1 == ref.u;

  std::printf("Chambolle accelerator simulation (%dx%d, %d iterations)\n", n,
              n, iterations);
  std::printf("  architecture     : %d sliding windows, %d PE lanes, tile %dx%d, merge %d\n",
              cfg.num_sliding_windows, cfg.pe_lanes, cfg.tile_rows,
              cfg.tile_cols, cfg.merge_iterations);
  std::printf("  matches software fixed-point solver: %s\n",
              exact ? "bit-exact" : "MISMATCH — BUG");
  std::printf("  passes x tiles   : %d x %zu  (redundancy %.1f%%)\n",
              result.stats.passes, result.stats.tiles_per_pass,
              100.0 * result.stats.tiling_redundancy);
  std::printf("  total cycles     : %llu\n",
              static_cast<unsigned long long>(result.stats.total_cycles));
  std::printf("  BRAM word reads  : %llu   writes: %llu\n",
              static_cast<unsigned long long>(result.stats.bram_word_reads),
              static_cast<unsigned long long>(result.stats.bram_word_writes));
  std::printf("  frame time       : %.3f ms @ %.0f MHz  ->  %.1f fps\n",
              1e3 * result.stats.seconds(cfg.clock_mhz), cfg.clock_mhz,
              result.fps);

  const hw::ResourceReport area = hw::estimate_resources(cfg);
  const hw::Virtex5Spec device;
  TextTable table({"Module", "Inst", "FF", "LUT", "BRAM", "DSP"});
  for (const auto& m : area.modules)
    table.add_row({m.name, std::to_string(m.instances),
                   std::to_string(m.instances * m.flipflops_each),
                   std::to_string(m.instances * m.luts_each),
                   std::to_string(m.instances * m.brams_each),
                   std::to_string(m.instances * m.dsps_each)});
  table.add_row({"TOTAL", "", std::to_string(area.flipflops),
                 std::to_string(area.luts), std::to_string(area.brams),
                 std::to_string(area.dsps)});
  std::printf("\nResource footprint on the XC5VLX110T (%.0f%% FF, %.0f%% LUT, "
              "%.0f%% BRAM, %.1f%% DSP):\n",
              area.flipflop_pct(device), area.lut_pct(device),
              area.bram_pct(device), area.dsp_pct(device));
  std::cout << table.to_string();

  std::printf("\nLadder schedule, first 40 cycles of an interior region "
              "(R read, W write, B both ports — dual-port BRAMs):\n");
  std::cout << hw::render_timeline(hw::schedule_region(cfg, 7, 7, 40), 40);

  std::printf("\n%s", hw::make_datasheet(cfg).to_string().c_str());

  return exact ? 0 : 1;
}
