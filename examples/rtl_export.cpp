// rtl_export — writes the generated Verilog design and its self-checking
// testbenches to disk: the artifact a hardware engineer would take into a
// simulator/synthesis flow, with golden vectors baked in from the C++
// bit-accurate model.
//
// Usage: rtl_export [output_dir]
#include <cstdio>
#include <fstream>
#include <string>

#include "hw/verilog_export.hpp"

int main(int argc, char** argv) {
  using namespace chambolle;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  const hw::ArchConfig cfg;  // the paper's configuration
  const hw::VerilogParams params;

  const std::string design_path = out_dir + "/chambolle_core.v";
  hw::write_verilog(design_path, cfg, params);

  const auto write = [&](const std::string& name, const std::string& text) {
    std::ofstream out(out_dir + "/" + name);
    out << text;
    std::printf("wrote %s/%s (%zu bytes)\n", out_dir.c_str(), name.c_str(),
                text.size());
  };
  write("pe_t_tb.v", hw::emit_pe_t_testbench(params, 128));
  write("pe_v_tb.v", hw::emit_pe_v_testbench(params, 128));

  std::printf("wrote %s (design: packed word macros, sqrt ROM + unit, pe_t, "
              "pe_v, pe_array)\n",
              design_path.c_str());
  std::printf("\nTo simulate (with icarus verilog):\n");
  std::printf("  iverilog -o pe_t_tb %s/chambolle_core.v %s/pe_t_tb.v && "
              "vvp pe_t_tb\n",
              out_dir.c_str(), out_dir.c_str());
  std::printf("Expected: 'PASS: all 128 pe_t vectors' — the vectors were "
              "computed by the C++ golden model this repository tests "
              "bit-exactly against the architecture simulator.\n");
  return 0;
}
