// rof_denoise — the Chambolle algorithm in its original role (Chambolle
// 2004): Rudin-Osher-Fatemi total-variation denoising.  Generates a piecewise
// constant image, adds Gaussian noise, denoises it with the sequential and
// the tiled parallel solver (verifying they agree bit-exactly), and writes
// before/after PGMs.
//
// Usage: rof_denoise [output_dir]
#include <cstdio>
#include <string>

#include "chambolle/energy.hpp"
#include "chambolle/solver.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/image_io.hpp"
#include "common/rng.hpp"
#include "workloads/metrics.hpp"

int main(int argc, char** argv) {
  using namespace chambolle;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const int N = 128;

  // Piecewise-constant scene: three nested rectangles.
  Image clean(N, N, 60.f);
  for (int r = 24; r < 104; ++r)
    for (int c = 24; c < 104; ++c) clean(r, c) = 140.f;
  for (int r = 48; r < 80; ++r)
    for (int c = 48; c < 80; ++c) clean(r, c) = 220.f;

  Rng rng(2024);
  Image noisy = clean;
  add_gaussian_noise(rng, noisy, 20.f);

  // ROF denoising: u = argmin TV(u) + 1/(2*theta)||u - v||^2.  A larger
  // theta denoises more aggressively.
  ChambolleParams params;
  params.theta = 12.f;
  params.tau = 3.f;  // tau/theta = 1/4
  params.iterations = 120;

  const ChambolleResult seq = solve(noisy, params);

  TiledSolverOptions topt;
  topt.tile_rows = 48;
  topt.tile_cols = 48;
  topt.merge_iterations = 6;
  const ChambolleResult tiled = solve_tiled(noisy, params, topt);

  const bool exact = seq.u == tiled.u;

  std::printf("ROF total-variation denoising via the Chambolle algorithm\n");
  std::printf("  noise RMS before     : %.2f\n",
              workloads::rms_diff(noisy, clean));
  std::printf("  noise RMS after      : %.2f\n",
              workloads::rms_diff(seq.u, clean));
  std::printf("  ROF energy before    : %.0f\n",
              rof_energy(noisy, noisy, params.theta));
  std::printf("  ROF energy after     : %.0f\n",
              rof_energy(seq.u, noisy, params.theta));
  std::printf("  tiled == sequential  : %s (bit-exact)\n",
              exact ? "yes" : "NO — BUG");

  io::write_pgm(out_dir + "/denoise_clean.pgm", clean);
  io::write_pgm(out_dir + "/denoise_noisy.pgm", noisy);
  io::write_pgm(out_dir + "/denoise_result.pgm", seq.u);
  std::printf("wrote %s/denoise_{clean,noisy,result}.pgm\n", out_dir.c_str());

  return exact && workloads::rms_diff(seq.u, clean) <
                      workloads::rms_diff(noisy, clean)
             ? 0
             : 1;
}
