// flow_cli — file-based command-line tool: computes TV-L1 optical flow
// between two PGM images and writes a Middlebury-color PPM visualization
// (plus optionally the warped/compensated frame).  The tool a downstream
// user would actually run on their own data.
//
// Usage:
//   flow_cli <frame0.pgm> <frame1.pgm> <flow_out.ppm>
//            [--levels N] [--warps N] [--iters N] [--lambda X]
//            [--solver ref|tiled|fixed] [--median] [--warp warped.pgm]
//
// With no arguments, runs a self-demo on generated frames in /tmp.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/flow_color.hpp"
#include "common/image_io.hpp"
#include "common/stopwatch.hpp"
#include "tvl1/tvl1.hpp"
#include "tvl1/warp.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace chambolle;

int usage() {
  std::fprintf(
      stderr,
      "usage: flow_cli <frame0.pgm> <frame1.pgm> <flow_out.ppm>\n"
      "               [--levels N] [--warps N] [--iters N] [--lambda X]\n"
      "               [--solver ref|tiled|fixed] [--median] [--warp out.pgm]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in0, in1, out_flow, out_warp;
  tvl1::Tvl1Params params;
  params.pyramid_levels = 4;
  params.warps = 5;
  params.chambolle.iterations = 50;

  if (argc <= 2) {
    // Self-demo: synthesize a frame pair and run on it; an optional single
    // argument names the output directory.
    const std::string dir = argc == 2 ? argv[1] : "/tmp";
    std::printf("flow_cli: running the built-in demo (outputs in %s)\n",
                dir.c_str());
    const auto wl = workloads::translating_scene(96, 96, 2.f, -1.f);
    io::write_pgm(dir + "/flow_cli_f0.pgm", wl.frame0);
    io::write_pgm(dir + "/flow_cli_f1.pgm", wl.frame1);
    in0 = dir + "/flow_cli_f0.pgm";
    in1 = dir + "/flow_cli_f1.pgm";
    out_flow = dir + "/flow_cli_flow.ppm";
  } else if (argc >= 4) {
    in0 = argv[1];
    in1 = argv[2];
    out_flow = argv[3];
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> const char* {
        return i + 1 < argc ? argv[++i] : nullptr;
      };
      if (arg == "--levels") {
        const char* n = next();
        if (!n) return usage();
        params.pyramid_levels = std::atoi(n);
      } else if (arg == "--warps") {
        const char* n = next();
        if (!n) return usage();
        params.warps = std::atoi(n);
      } else if (arg == "--iters") {
        const char* n = next();
        if (!n) return usage();
        params.chambolle.iterations = std::atoi(n);
      } else if (arg == "--lambda") {
        const char* n = next();
        if (!n) return usage();
        params.lambda = static_cast<float>(std::atof(n));
      } else if (arg == "--solver") {
        const char* n = next();
        if (!n) return usage();
        if (std::strcmp(n, "ref") == 0)
          params.solver = tvl1::InnerSolver::kReference;
        else if (std::strcmp(n, "tiled") == 0)
          params.solver = tvl1::InnerSolver::kTiled;
        else if (std::strcmp(n, "fixed") == 0)
          params.solver = tvl1::InnerSolver::kFixed;
        else
          return usage();
      } else if (arg == "--median") {
        params.median_filtering = true;
      } else if (arg == "--warp") {
        const char* n = next();
        if (!n) return usage();
        out_warp = n;
      } else {
        return usage();
      }
    }
  } else {
    return usage();
  }

  try {
    const Image f0 = io::read_pgm(in0);
    const Image f1 = io::read_pgm(in1);

    const Stopwatch clock;
    tvl1::Tvl1Stats stats;
    const FlowField flow = tvl1::compute_flow(f0, f1, params, &stats);
    const double ms = clock.milliseconds();

    io::write_ppm(out_flow, colorize_flow(flow));
    std::printf("flow_cli: %dx%d, %d levels, %d warps, %d inner iterations\n",
                f0.cols(), f0.rows(), params.pyramid_levels, params.warps,
                params.chambolle.iterations);
    std::printf("  time            : %.1f ms (%.0f%% in Chambolle)\n", ms,
                100.0 * stats.chambolle_fraction());
    std::printf("  max |flow|      : %.2f px\n", max_flow_magnitude(flow));
    std::printf("  wrote           : %s\n", out_flow.c_str());

    if (!out_warp.empty()) {
      io::write_pgm(out_warp, tvl1::warp(f1, flow));
      std::printf("  wrote           : %s (frame1 warped onto frame0)\n",
                  out_warp.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flow_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}
