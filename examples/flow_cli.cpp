// flow_cli — file-based command-line tool: computes TV-L1 optical flow
// between two PGM images and writes a Middlebury-color PPM visualization
// (plus optionally the warped/compensated frame).  The tool a downstream
// user would actually run on their own data.
//
// Usage:
//   flow_cli [<frame0.pgm> <frame1.pgm> <flow_out.ppm>]
//            [--levels N] [--warps N] [--iters N] [--lambda X]
//            [--solver ref|tiled|resident|fixed|accel] [--threads N]
//            [--tile RxC] [--merge K] [--median]
//            [--adaptive] [--tol X] [--patience K]
//            [--ml-period K] [--ml-levels N]
//            [--kernel auto|scalar|sse2|neon|avx2|avx512|fixed-simd|fixed-scalar]
//            [--warp warped.pgm] [--trace trace.json] [--metrics metrics.json]
//            [--metrics-prom metrics.prom] [--profile profile.json]
//            [--flight-dump flight.json] [--no-flight]
//
// --threads N sizes the process-wide worker pool (and the tiled solver's
// team); 0 or omitted uses the hardware concurrency.
//
// --tile RxC and --merge K set the sliding-window geometry of the `tiled`
// and `resident` solvers (defaults: the paper's 88x92 window, K = 4; tile
// dims must exceed 2*K).
//
// --adaptive (resident solver only) turns on per-tile early stopping: a tile
// whose per-iteration dual residual stays under --tol (default 1e-4) for
// --patience consecutive passes (default 2) retires and its lane capacity is
// redistributed; --iters still caps the work.  Results are quality-bounded
// rather than bit-exact — see docs/parallelism.md.
//
// --ml-period K (resident solver only; implies --adaptive) adds the periodic
// coarse-grid correction: every K passes a small V-cycle Chambolle solve on
// restricted grids computes a low-frequency dual correction that every tile
// folds in at its next pass.  --ml-levels N fixes the ladder depth (default
// 0 = auto).  See docs/parallelism.md ("Coarse-correction rendezvous").
//
// --kernel pins the SIMD iteration-kernel backend (default: best the CPU
// supports, also overridable with CHAMBOLLE_KERNEL); every backend produces
// bit-identical output, so this is a measurement knob, not a quality one.
// The fixed-simd/fixed-scalar values pin the FIXED-POINT kernel instead
// (used by --solver fixed; also overridable with CHAMBOLLE_FIXED_KERNEL),
// which is likewise bit-identical across backends.  See docs/kernels.md.
//
// With no positional arguments, runs a self-demo on generated frames (an
// optional bare argument names the output directory, default /tmp).  The
// demo uses the `accel` solver so one run exercises the whole stack, from
// the TV-L1 pipeline down to the cycle-level FPGA simulator.
//
// --trace enables telemetry and writes a Chrome trace-event JSON (open in
// chrome://tracing or https://ui.perfetto.dev); --metrics writes the metric
// registry snapshot; --metrics-prom writes the same registry in the
// Prometheus text format; --profile brackets the flow computation in a
// profiling session and writes the per-lane utilization report (its text
// table also prints to stdout).  The crash flight recorder is always on:
// --flight-dump writes its timeline on success too (and names the crash
// dump file), --no-flight disables it.  See docs/observability.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/flow_color.hpp"
#include "common/image_io.hpp"
#include "common/parse.hpp"
#include "common/stopwatch.hpp"
#include "hw/accelerator.hpp"
#include "kernels/kernel.hpp"
#include "kernels/kernel_fixed_simd.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json_util.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "tvl1/accel_backend.hpp"
#include "tvl1/tvl1.hpp"
#include "tvl1/warp.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace chambolle;

int usage() {
  std::fprintf(
      stderr,
      "usage: flow_cli [<frame0.pgm> <frame1.pgm> <flow_out.ppm>]\n"
      "               [--levels N] [--warps N] [--iters N] [--lambda X]\n"
      "               [--solver ref|tiled|resident|fixed|accel] [--threads N]\n"
      "               [--tile RxC] [--merge K]\n"
      "               [--adaptive] [--tol X] [--patience K]\n"
      "               [--ml-period K] [--ml-levels N]\n"
      "               [--median] [--kernel auto|scalar|sse2|neon|avx2|avx512|\n"
      "                           fixed-simd|fixed-scalar]\n"
      "               [--warp out.pgm] [--trace trace.json]\n"
      "               [--metrics metrics.json] [--metrics-prom out.prom]\n"
      "               [--profile profile.json] [--flight-dump flight.json]\n"
      "               [--no-flight]\n"
      "With no positional arguments a self-demo runs on generated frames.\n");
  return 2;
}

// Flag-value parsers: reject garbage and out-of-range values with a concrete
// message instead of the old atoi behavior of silently computing with 0.
bool flag_int(const char* flag, const char* value, int min, int max,
              int& out) {
  if (const auto v = parse_int(value, min, max)) {
    out = *v;
    return true;
  }
  std::fprintf(stderr, "flow_cli: %s expects an integer in [%d, %d], got '%s'\n",
               flag, min, max, value);
  return false;
}

bool flag_float(const char* flag, const char* value, float min, float max,
                float& out) {
  if (const auto v = parse_float(value, min, max)) {
    out = *v;
    return true;
  }
  std::fprintf(stderr, "flow_cli: %s expects a number in [%g, %g], got '%s'\n",
               flag, static_cast<double>(min), static_cast<double>(max), value);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in0, in1, out_flow, out_warp, out_trace, out_metrics;
  std::string out_prom, out_profile, out_flight;
  bool no_flight = false;
  std::vector<std::string> positional;
  tvl1::Tvl1Params params;
  params.pyramid_levels = 4;
  params.warps = 5;
  params.chambolle.iterations = 50;
  bool use_accel = false;
  bool solver_given = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--levels") {
      const char* n = next();
      if (!n) return usage();
      if (!flag_int("--levels", n, 1, 16, params.pyramid_levels)) return 2;
    } else if (arg == "--warps") {
      const char* n = next();
      if (!n) return usage();
      if (!flag_int("--warps", n, 1, 1000, params.warps)) return 2;
    } else if (arg == "--iters") {
      const char* n = next();
      if (!n) return usage();
      if (!flag_int("--iters", n, 1, 1000000, params.chambolle.iterations))
        return 2;
    } else if (arg == "--lambda") {
      const char* n = next();
      if (!n) return usage();
      if (!flag_float("--lambda", n, 1e-6f, 1e6f, params.lambda)) return 2;
    } else if (arg == "--solver") {
      const char* n = next();
      if (!n) return usage();
      solver_given = true;
      if (std::strcmp(n, "ref") == 0)
        params.solver = tvl1::InnerSolver::kReference;
      else if (std::strcmp(n, "tiled") == 0)
        params.solver = tvl1::InnerSolver::kTiled;
      else if (std::strcmp(n, "resident") == 0)
        params.solver = tvl1::InnerSolver::kResident;
      else if (std::strcmp(n, "fixed") == 0)
        params.solver = tvl1::InnerSolver::kFixed;
      else if (std::strcmp(n, "accel") == 0)
        use_accel = true;
      else
        return usage();
    } else if (arg == "--tile") {
      const char* n = next();
      if (!n) return usage();
      // "RxC" split by hand so each half goes through the checked parser
      // (sscanf would accept "8x9garbage").
      const char* x = std::strchr(n, 'x');
      if (!x) {
        std::fprintf(stderr, "flow_cli: --tile expects RxC, got '%s'\n", n);
        return 2;
      }
      const std::string rows_str(n, x);
      if (!flag_int("--tile rows", rows_str.c_str(), 1, 1 << 15,
                    params.tiled.tile_rows) ||
          !flag_int("--tile cols", x + 1, 1, 1 << 15, params.tiled.tile_cols))
        return 2;
    } else if (arg == "--merge") {
      const char* n = next();
      if (!n) return usage();
      if (!flag_int("--merge", n, 1, 1 << 12, params.tiled.merge_iterations))
        return 2;
    } else if (arg == "--threads") {
      const char* n = next();
      if (!n) return usage();
      int threads = 0;
      if (!flag_int("--threads", n, 0, 1024, threads)) return 2;
      // Sizes the process-wide resident pool; the tiled solver inherits the
      // width through its num_threads = 0 (auto) default.
      parallel::set_default_pool_threads(threads);
    } else if (arg == "--kernel") {
      const char* n = next();
      if (!n) return usage();
      try {
        if (std::strcmp(n, "auto") == 0) {
          kernels::reset_backend();
          kernels::fixed::reset_backend();
        } else if (std::strcmp(n, "fixed-simd") == 0) {
          kernels::fixed::force_backend(kernels::fixed::Backend::kSimd);
        } else if (std::strcmp(n, "fixed-scalar") == 0) {
          kernels::fixed::force_backend(kernels::fixed::Backend::kScalar);
        } else {
          // Hard-rejects unknown or unavailable names with the list of
          // compiled-in backends.
          kernels::force_backend(std::string_view(n));
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "flow_cli: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--adaptive") {
      params.adaptive_stopping = true;
    } else if (arg == "--tol") {
      const char* n = next();
      if (!n) return usage();
      if (!flag_float("--tol", n, 1e-12f, 1e3f, params.adaptive.tolerance))
        return 2;
    } else if (arg == "--patience") {
      const char* n = next();
      if (!n) return usage();
      if (!flag_int("--patience", n, 1, 1 << 20, params.adaptive.patience))
        return 2;
    } else if (arg == "--ml-period") {
      const char* n = next();
      if (!n) return usage();
      if (!flag_int("--ml-period", n, 1, 1 << 20, params.multilevel.period))
        return 2;
      params.adaptive_stopping = true;  // run_multilevel rides the adaptive path
    } else if (arg == "--ml-levels") {
      const char* n = next();
      if (!n) return usage();
      if (!flag_int("--ml-levels", n, 0, 16, params.multilevel.levels))
        return 2;
    } else if (arg == "--median") {
      params.median_filtering = true;
    } else if (arg == "--warp") {
      const char* n = next();
      if (!n) return usage();
      out_warp = n;
    } else if (arg == "--trace") {
      const char* n = next();
      if (!n) return usage();
      out_trace = n;
    } else if (arg == "--metrics") {
      const char* n = next();
      if (!n) return usage();
      out_metrics = n;
    } else if (arg == "--metrics-prom") {
      const char* n = next();
      if (!n) return usage();
      out_prom = n;
    } else if (arg == "--profile") {
      const char* n = next();
      if (!n) return usage();
      out_profile = n;
    } else if (arg == "--flight-dump") {
      const char* n = next();
      if (!n) return usage();
      out_flight = n;
    } else if (arg == "--no-flight") {
      no_flight = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      positional.push_back(arg);
    }
  }

  if (positional.size() <= 1) {
    // Self-demo: synthesize a frame pair and run on it; an optional single
    // positional names the output directory.
    const std::string dir = positional.size() == 1 ? positional[0] : "/tmp";
    std::printf("flow_cli: running the built-in demo (outputs in %s)\n",
                dir.c_str());
    if (!solver_given) use_accel = true;  // demo exercises the full stack
    const auto wl = workloads::translating_scene(96, 96, 2.f, -1.f);
    io::write_pgm(dir + "/flow_cli_f0.pgm", wl.frame0);
    io::write_pgm(dir + "/flow_cli_f1.pgm", wl.frame1);
    in0 = dir + "/flow_cli_f0.pgm";
    in1 = dir + "/flow_cli_f1.pgm";
    out_flow = dir + "/flow_cli_flow.ppm";
  } else if (positional.size() == 3) {
    in0 = positional[0];
    in1 = positional[1];
    out_flow = positional[2];
  } else {
    return usage();
  }

  // Asking for an observability artifact is the opt-in.
  if (!out_trace.empty() || !out_metrics.empty() || !out_prom.empty())
    telemetry::set_enabled(true);
  if (no_flight)
    telemetry::set_flight_recorder_enabled(false);
  else
    telemetry::install_crash_handler(out_flight.empty() ? nullptr
                                                        : out_flight.c_str());

  try {
    const Image f0 = io::read_pgm(in0);
    const Image f1 = io::read_pgm(in1);

    if (!out_profile.empty())
      telemetry::Profiler::instance().begin(
          parallel::default_pool().lanes_for(0));
    const Stopwatch clock;
    tvl1::Tvl1Stats stats;
    FlowField flow;
    if (use_accel) {
      hw::ChambolleAccelerator accel;
      tvl1::AccelTvl1Stats accel_stats;
      flow = tvl1::compute_flow_accelerated(f0, f1, params, accel,
                                            &accel_stats);
      stats.total_seconds = clock.seconds();
      std::printf(
          "flow_cli: accel backend, %d solves, %llu device cycles "
          "(%.1f ms projected at %.0f MHz)\n",
          accel_stats.solves,
          static_cast<unsigned long long>(accel_stats.device_cycles),
          1e3 * accel_stats.device_seconds(accel.config().clock_mhz),
          accel.config().clock_mhz);
    } else {
      flow = tvl1::compute_flow(f0, f1, params, &stats);
    }
    const double ms = clock.milliseconds();
    telemetry::UtilizationReport profile;
    if (!out_profile.empty()) profile = telemetry::Profiler::instance().end();

    io::write_ppm(out_flow, colorize_flow(flow));
    std::printf("flow_cli: %dx%d, %d levels, %d warps, %d inner iterations\n",
                f0.cols(), f0.rows(), params.pyramid_levels, params.warps,
                params.chambolle.iterations);
    if (use_accel)
      std::printf("  time            : %.1f ms (host wall clock)\n", ms);
    else
      std::printf("  time            : %.1f ms (%.0f%% in Chambolle)\n", ms,
                  100.0 * stats.chambolle_fraction());
    if (!use_accel && params.solver != tvl1::InnerSolver::kFixed)
      std::printf("  kernel backend  : %s\n",
                  kernels::backend_name(kernels::active_backend()));
    else if (!use_accel)
      std::printf("  kernel backend  : fixed-%s\n",
                  kernels::fixed::backend_name(
                      kernels::fixed::active_backend()));
    std::printf("  max |flow|      : %.2f px\n", max_flow_magnitude(flow));
    std::printf("  wrote           : %s\n", out_flow.c_str());

    if (!out_warp.empty()) {
      io::write_pgm(out_warp, tvl1::warp(f1, flow));
      std::printf("  wrote           : %s (frame1 warped onto frame0)\n",
                  out_warp.c_str());
    }
    if (!out_trace.empty()) {
      if (telemetry::write_chrome_trace(out_trace))
        std::printf("  wrote           : %s (Chrome trace, %zu spans)\n",
                    out_trace.c_str(), telemetry::trace_event_count());
      else
        std::fprintf(stderr, "flow_cli: failed to write %s\n",
                     out_trace.c_str());
    }
    if (!out_metrics.empty()) {
      if (telemetry::registry().write_json(out_metrics))
        std::printf("  wrote           : %s (metrics snapshot)\n",
                    out_metrics.c_str());
      else
        std::fprintf(stderr, "flow_cli: failed to write %s\n",
                     out_metrics.c_str());
    }
    if (!out_prom.empty()) {
      if (telemetry::write_prometheus(out_prom))
        std::printf("  wrote           : %s (Prometheus exposition)\n",
                    out_prom.c_str());
      else
        std::fprintf(stderr, "flow_cli: failed to write %s\n",
                     out_prom.c_str());
    }
    if (!out_profile.empty()) {
      std::fputs(profile.to_table().c_str(), stdout);
      if (telemetry::write_text_file(out_profile, profile.to_json()))
        std::printf("  wrote           : %s (utilization report)\n",
                    out_profile.c_str());
      else
        std::fprintf(stderr, "flow_cli: failed to write %s\n",
                     out_profile.c_str());
    }
    if (!out_flight.empty() && !no_flight) {
      if (telemetry::write_flight_record(out_flight))
        std::printf("  wrote           : %s (flight record, %zu events)\n",
                    out_flight.c_str(), telemetry::flight_event_count());
      else
        std::fprintf(stderr, "flow_cli: failed to write %s\n",
                     out_flight.c_str());
    }
  } catch (const std::exception& e) {
    telemetry::Profiler::instance().cancel();
    std::fprintf(stderr, "flow_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}
