// motion_compensation — the video-coding application of the paper's
// introduction (refs [2][3]): predict a frame from its predecessor using the
// estimated optical flow, and compare the prediction residual against plain
// frame differencing — the quantity a video encoder would entropy-code.
//
// Usage: motion_compensation [output_dir]
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/image_io.hpp"
#include "common/text_table.hpp"
#include "tvl1/tvl1.hpp"
#include "tvl1/warp.hpp"
#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace chambolle;

double residual_energy(const Image& a, const Image& b, int margin) {
  double s = 0;
  long long n = 0;
  for (int r = margin; r < a.rows() - margin; ++r)
    for (int c = margin; c < a.cols() - margin; ++c) {
      const double d = static_cast<double>(a(r, c)) - b(r, c);
      s += d * d;
      ++n;
    }
  return std::sqrt(s / static_cast<double>(n));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const int N = 96;

  TextTable table({"Scene", "Plain diff RMS", "Compensated RMS", "Reduction"});
  struct Case {
    const char* name;
    workloads::FlowWorkload wl;
  };
  Case cases[] = {
      {"pan (3.0, 1.5)", workloads::translating_scene(N, N, 3.f, 1.5f, 71)},
      {"rotate 0.05 rad", workloads::rotating_scene(N, N, 0.05f, 72)},
      {"zoom x1.06", workloads::zooming_scene(N, N, 1.06f, 73)},
  };

  bool all_reduced = true;
  for (const Case& cs : cases) {
    tvl1::Tvl1Params params;
    params.pyramid_levels = 4;
    params.warps = 5;
    params.chambolle.iterations = 40;
    const FlowField flow =
        tvl1::compute_flow(cs.wl.frame0, cs.wl.frame1, params);

    // Motion-compensated prediction of frame0 from frame1.
    const Image predicted = tvl1::warp(cs.wl.frame1, flow);
    const double plain = residual_energy(cs.wl.frame1, cs.wl.frame0, 8);
    const double comp = residual_energy(predicted, cs.wl.frame0, 8);
    all_reduced &= comp < plain;
    table.add_row({cs.name, TextTable::num(plain, 2), TextTable::num(comp, 2),
                   TextTable::num(100.0 * (1.0 - comp / plain), 0) + "%"});
  }

  std::printf("Motion compensation with TV-L1 optical flow\n");
  std::printf("(RMS of the prediction residual an encoder would code)\n\n");
  table.render(std::cout);
  return all_reduced ? 0 : 1;
}
