// quickstart — the smallest end-to-end use of the library:
// estimate the optical flow between two synthetic frames with TV-L1
// (Chambolle inner solver) and print accuracy numbers.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "tvl1/tvl1.hpp"
#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

int main() {
  using namespace chambolle;

  // 1. A 64x64 frame pair whose true motion is a global (2, 1) translation.
  const workloads::FlowWorkload wl =
      workloads::translating_scene(64, 64, 2.f, 1.f);

  // 2. Configure TV-L1: a 3-level pyramid, 5 warps per level, 30 Chambolle
  //    iterations per warp (theta/tau defaults satisfy tau/theta <= 1/4).
  tvl1::Tvl1Params params;
  params.pyramid_levels = 3;
  params.warps = 5;
  params.chambolle.iterations = 30;

  // 3. Compute the flow.
  tvl1::Tvl1Stats stats;
  const FlowField flow =
      tvl1::compute_flow(wl.frame0, wl.frame1, params, &stats);

  // 4. Evaluate against the analytic ground truth.
  const double aee =
      workloads::interior_endpoint_error(flow, wl.ground_truth, 6);
  std::printf("quickstart: TV-L1 optical flow on a 64x64 translating scene\n");
  std::printf("  true motion        : (2.00, 1.00) px/frame\n");
  std::printf("  estimated at center: (%.2f, %.2f) px/frame\n",
              flow.u1(32, 32), flow.u2(32, 32));
  std::printf("  avg endpoint error : %.3f px (interior)\n", aee);
  std::printf("  total time         : %.1f ms (%.0f%% inside Chambolle)\n",
              stats.total_seconds * 1e3, 100.0 * stats.chambolle_fraction());
  return aee < 1.0 ? 0 : 1;
}
