// flow_server — the multi-stream serving demo: N synthetic video streams
// fed concurrently through one FlowService (src/serving/flow_service.hpp),
// printing per-stream results and the service's admission/latency report.
//
// Each stream is an independent synthetic pan sequence pushed frame by
// frame through a flow-mode session: the first frame primes the session's
// pyramid cache (kPrimed), every later frame returns the flow from the
// previous frame, solved on whichever fleet slot picked the session up.
// With --slo-ms set, frames that queue past the deadline are shed and the
// stream simply skips them — the demo prints which.
//
// Usage:
//   flow_server [--streams N] [--frames N] [--slots N] [--lanes N]
//               [--queue N] [--slo-ms X] [--size N]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/parse.hpp"
#include "common/stopwatch.hpp"
#include "common/text_table.hpp"
#include "serving/flow_service.hpp"
#include "workloads/metrics.hpp"
#include "workloads/sequence.hpp"

int main(int argc, char** argv) {
  using namespace chambolle;

  int streams = 4, frames = 6, slots = 2, lanes = 0, queue = 8, size = 64;
  float slo_ms = 0.f;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* val = argv[i + 1];
    std::optional<int> vi;
    std::optional<float> vf;
    if (flag == "--streams" && (vi = parse_int(val, 1, 64)))
      streams = *vi;
    else if (flag == "--frames" && (vi = parse_int(val, 2, 1000)))
      frames = *vi;
    else if (flag == "--slots" && (vi = parse_int(val, 1, 32)))
      slots = *vi;
    else if (flag == "--lanes" && (vi = parse_int(val, 0, 256)))
      lanes = *vi;
    else if (flag == "--queue" && (vi = parse_int(val, 1, 4096)))
      queue = *vi;
    else if (flag == "--size" && (vi = parse_int(val, 16, 1024)))
      size = *vi;
    else if (flag == "--slo-ms" && (vf = parse_float(val, 0.f, 1e6f)))
      slo_ms = *vf;
    else {
      std::fprintf(stderr, "flow_server: bad flag/value: %s %s\n",
                   flag.c_str(), val);
      return 2;
    }
  }

  serving::FlowServiceOptions opts;
  opts.params.pyramid_levels = 3;
  opts.params.warps = 2;
  opts.params.chambolle.iterations = 20;
  opts.slots = slots;
  opts.lanes_per_slot = lanes;
  opts.queue_capacity = static_cast<std::size_t>(queue);
  opts.slo_ms = static_cast<double>(slo_ms);
  serving::FlowService service(opts);
  std::printf("flow_server: %d streams -> %d slots x %d lanes\n", streams,
              slots, service.lanes_per_slot());

  // One synthetic pan sequence per stream, each with its own motion rate so
  // the streams are genuinely distinct content.
  std::vector<workloads::VideoSequence> sequences;
  for (int s = 0; s < streams; ++s) {
    workloads::SequenceParams sp;
    sp.kind = workloads::MotionKind::kPan;
    sp.frames = frames;
    sp.rate_x = 0.5f + 0.25f * static_cast<float>(s);
    sp.rate_y = 0.25f;
    sequences.push_back(workloads::make_sequence(size, size, sp));
  }

  // Open-loop: every stream submits its whole sequence up front; replies
  // are collected afterwards, so queueing and batching are visible.
  const Stopwatch wall;
  std::vector<std::shared_ptr<serving::FlowService::Session>> sessions;
  std::vector<std::vector<std::future<serving::Reply>>> futures(
      static_cast<std::size_t>(streams));
  for (int s = 0; s < streams; ++s) sessions.push_back(service.open_session());
  for (int f = 0; f < frames; ++f)
    for (int s = 0; s < streams; ++s)
      futures[static_cast<std::size_t>(s)].push_back(
          sessions[static_cast<std::size_t>(s)]->submit_frame(
              sequences[static_cast<std::size_t>(s)].frames
                  [static_cast<std::size_t>(f)]));

  TextTable table({"stream", "frame", "status", "AEE (px)", "queue ms",
                   "solve ms"});
  for (int s = 0; s < streams; ++s) {
    for (int f = 0; f < frames; ++f) {
      const serving::Reply r =
          futures[static_cast<std::size_t>(s)][static_cast<std::size_t>(f)]
              .get();
      std::string aee = "-";
      if (r.ok()) {
        // Truth for frame f is the flow from frame f-1 to f.
        const double err = workloads::interior_endpoint_error(
            r.flow,
            sequences[static_cast<std::size_t>(s)]
                .truth[static_cast<std::size_t>(f - 1)],
            8);
        aee = TextTable::num(err, 3);
      }
      table.add_row({std::to_string(s), std::to_string(f),
                     serving::to_string(r.status), aee,
                     TextTable::num(r.queue_ms, 2),
                     TextTable::num(r.solve_ms, 2)});
    }
  }
  table.render(std::cout);

  service.drain();
  const serving::ServiceStats st = service.stats();
  std::printf(
      "served %llu replies in %.1f ms  (p50 %.2f ms, p95 %.2f ms, p99 %.2f "
      "ms; shed %llu queue-full + %llu deadline; %llu batches, %llu engine "
      "builds)\n",
      static_cast<unsigned long long>(st.completed), wall.milliseconds(),
      st.p50_ms, st.p95_ms, st.p99_ms,
      static_cast<unsigned long long>(st.shed_queue_full),
      static_cast<unsigned long long>(st.shed_deadline),
      static_cast<unsigned long long>(st.batches),
      static_cast<unsigned long long>(st.engine_builds));
  return 0;
}
