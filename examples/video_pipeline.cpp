// video_pipeline — frame-rate-oriented demo: runs TV-L1 over a synthetic
// video sequence (the unit Table II is denominated in), tracking per-pair
// accuracy, sustained software fps, and the projected accelerator fps for
// the same per-frame iteration budget.  Also exports the estimated flows as
// Middlebury .flo files for external tooling.
//
// Usage: video_pipeline [output_dir]
#include <cstdio>
#include <iostream>
#include <string>

#include "common/flo_io.hpp"
#include "common/stopwatch.hpp"
#include "common/text_table.hpp"
#include "hw/accelerator.hpp"
#include "tvl1/tvl1.hpp"
#include "workloads/metrics.hpp"
#include "workloads/sequence.hpp"

int main(int argc, char** argv) {
  using namespace chambolle;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const int N = 96;

  workloads::SequenceParams sp;
  sp.kind = workloads::MotionKind::kPan;
  sp.frames = 8;
  sp.rate_x = 1.5f;
  sp.rate_y = 0.5f;
  const workloads::VideoSequence seq = workloads::make_sequence(N, N, sp);

  tvl1::Tvl1Params params;
  params.pyramid_levels = 3;
  params.warps = 4;
  params.chambolle.iterations = 30;

  TextTable table({"Pair", "AEE (px)", "Time (ms)"});
  const Stopwatch total;
  double worst_aee = 0.0;
  for (std::size_t k = 0; k + 1 < seq.frames.size(); ++k) {
    const Stopwatch clock;
    const FlowField flow =
        tvl1::compute_flow(seq.frames[k], seq.frames[k + 1], params);
    const double ms = clock.milliseconds();
    const double aee =
        workloads::interior_endpoint_error(flow, seq.truth[k], 8);
    worst_aee = std::max(worst_aee, aee);
    table.add_row({std::to_string(k) + "->" + std::to_string(k + 1),
                   TextTable::num(aee, 3), TextTable::num(ms, 1)});
    io::write_flo(out_dir + "/video_flow_" + std::to_string(k) + ".flo", flow);
  }
  const double total_s = total.seconds();
  const double pairs = static_cast<double>(seq.frames.size() - 1);

  std::printf("TV-L1 over an %d-frame panning sequence (%dx%d)\n\n",
              sp.frames, N, N);
  table.render(std::cout);
  std::printf("\n  sustained software rate : %.1f flow fields/s on this host\n",
              pairs / total_s);

  // The same per-frame budget on the simulated accelerator.
  hw::ChambolleAccelerator accel{hw::ArchConfig{}};
  const int inner_per_frame =
      params.chambolle.iterations * params.warps;  // per pyramid sweep
  std::printf("  accelerator projection  : %.1f flow fields/s "
              "(pyramid cycle model, %d inner iterations/level)\n",
              accel.estimate_pyramid_fps(N, N, inner_per_frame * 3, 3),
              inner_per_frame);
  std::printf("  wrote %s/video_flow_*.flo (Middlebury format)\n",
              out_dir.c_str());
  return worst_aee < 0.5 ? 0 : 1;
}
