// optical_flow_demo — computes TV-L1 flow on three synthetic scenes
// (translation, rotation, zoom) with each inner-solver backend, writes
// Middlebury-style flow visualizations as PPM files, and prints an accuracy
// and timing summary.
//
// Usage: optical_flow_demo [output_dir]   (default: current directory)
#include <cstdio>
#include <iostream>
#include <string>

#include "common/flow_color.hpp"
#include "common/image_io.hpp"
#include "common/stopwatch.hpp"
#include "common/text_table.hpp"
#include "tvl1/tvl1.hpp"
#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace chambolle;

struct Scene {
  const char* name;
  workloads::FlowWorkload wl;
};

const char* solver_name(tvl1::InnerSolver s) {
  switch (s) {
    case tvl1::InnerSolver::kReference: return "reference";
    case tvl1::InnerSolver::kTiled: return "tiled";
    case tvl1::InnerSolver::kResident: return "resident";
    case tvl1::InnerSolver::kFixed: return "fixed-point";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const int N = 96;

  Scene scenes[] = {
      {"translate", workloads::translating_scene(N, N, 2.5f, -1.f)},
      {"rotate", workloads::rotating_scene(N, N, 0.04f)},
      {"zoom", workloads::zooming_scene(N, N, 1.05f)},
  };

  TextTable table({"Scene", "Solver", "AEE (px)", "AAE (deg)", "Time (ms)"});

  for (const Scene& scene : scenes) {
    for (const tvl1::InnerSolver solver :
         {tvl1::InnerSolver::kReference, tvl1::InnerSolver::kTiled,
          tvl1::InnerSolver::kFixed}) {
      tvl1::Tvl1Params params;
      params.pyramid_levels = 3;
      params.warps = 5;
      params.chambolle.iterations = 30;
      params.solver = solver;
      params.tiled.tile_rows = 48;
      params.tiled.tile_cols = 48;
      params.tiled.merge_iterations = 5;

      const Stopwatch clock;
      const FlowField flow =
          tvl1::compute_flow(scene.wl.frame0, scene.wl.frame1, params);
      const double ms = clock.milliseconds();

      table.add_row({scene.name, solver_name(solver),
                     TextTable::num(workloads::interior_endpoint_error(
                                        flow, scene.wl.ground_truth, 8),
                                    3),
                     TextTable::num(workloads::average_angular_error_deg(
                                        flow, scene.wl.ground_truth),
                                    2),
                     TextTable::num(ms, 1)});

      if (solver == tvl1::InnerSolver::kReference) {
        const std::string path = out_dir + "/flow_" + scene.name + ".ppm";
        io::write_ppm(path, colorize_flow(flow));
        std::printf("wrote %s\n", path.c_str());
      }
    }
    const std::string truth_path =
        out_dir + "/flow_" + scene.name + "_truth.ppm";
    io::write_ppm(truth_path, colorize_flow(scene.wl.ground_truth));
  }

  std::printf("\nTV-L1 optical flow across scenes and solver backends\n");
  std::cout << table.to_string();
  return 0;
}
