// rolling_shutter_correction — the application that motivates the paper's
// introduction (Section I): undo rolling-shutter skew using TV-L1 optical
// flow between two consecutive captured frames.
//
// Usage: rolling_shutter_correction [output_dir]
#include <cmath>
#include <cstdio>
#include <string>

#include "common/image_io.hpp"
#include "tvl1/tvl1.hpp"
#include "tvl1/warp.hpp"
#include "workloads/metrics.hpp"
#include "workloads/rolling_shutter.hpp"
#include "workloads/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace chambolle;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const int N = 96;
  const float vx = 5.f;  // camera pan: pixels per frame interval

  // Scene with strong vertical structure so the skew is visible.
  Image scene(N, N);
  const Image texture = workloads::smooth_texture(N, N, 77);
  for (int r = 0; r < N; ++r)
    for (int c = 0; c < N; ++c)
      scene(r, c) = 0.5f * texture(r, c) + ((c / 8) % 2 == 0 ? 40.f : 150.f);

  // Two consecutive rolling-shutter captures of the panning scene.
  const Image frame0 = workloads::rolling_shutter_capture(scene, vx, 0.f);
  Image scene_next(N, N);
  for (int r = 0; r < N; ++r)
    for (int c = 0; c < N; ++c)
      scene_next(r, c) = tvl1::sample_bilinear(scene, static_cast<float>(r),
                                               static_cast<float>(c) - vx);
  const Image frame1 = workloads::rolling_shutter_capture(scene_next, vx, 0.f);

  // Estimate the inter-frame flow with TV-L1 and correct frame0.
  tvl1::Tvl1Params params;
  params.pyramid_levels = 4;
  params.warps = 6;
  params.chambolle.iterations = 30;
  const FlowField flow = tvl1::compute_flow(frame0, frame1, params);
  const Image corrected = workloads::rolling_shutter_correct(frame0, flow);

  // Interior distortion before/after.
  double err_before = 0, err_after = 0;
  int n = 0;
  for (int r = 10; r < N - 10; ++r)
    for (int c = 10; c < N - 10; ++c) {
      err_before += std::abs(frame0(r, c) - scene(r, c));
      err_after += std::abs(corrected(r, c) - scene(r, c));
      ++n;
    }
  err_before /= n;
  err_after /= n;

  std::printf("Rolling-shutter correction via TV-L1 optical flow\n");
  std::printf("  camera pan              : %.1f px/frame\n", vx);
  std::printf("  mean flow estimated     : (%.2f, %.2f) px/frame\n",
              flow.u1(N / 2, N / 2), flow.u2(N / 2, N / 2));
  std::printf("  mean |error| distorted  : %.2f intensity levels\n",
              err_before);
  std::printf("  mean |error| corrected  : %.2f intensity levels\n",
              err_after);
  std::printf("  distortion removed      : %.0f%%\n",
              100.0 * (1.0 - err_after / err_before));

  io::write_pgm(out_dir + "/rs_scene.pgm", scene);
  io::write_pgm(out_dir + "/rs_captured.pgm", frame0);
  io::write_pgm(out_dir + "/rs_corrected.pgm", corrected);
  std::printf("wrote %s/rs_{scene,captured,corrected}.pgm\n", out_dir.c_str());

  return err_after < err_before ? 0 : 1;
}
