// seu_resilience — soft-error (single-event-upset) study of the BRAM state.
//
// FPGAs flip bits; what happens when one lands in the accelerator's on-chip
// state mid-solve?  The Chambolle iteration answers differently per field:
//   * a flip in px/py (the DUAL state) is transient — the projected
//     fixed-point iteration contracts back toward the solution, so the
//     damage decays with the remaining iterations;
//   * a flip in v (the INPUT, re-read every iteration) is persistent — but
//     spatially confined: information propagates one pixel per iteration
//     (the Figure 1 stencil), so the blast radius is bounded.
// Both behaviours are quantified here and asserted by the test suite — an
// operational-robustness result the paper's architecture gets for free from
// the mathematics.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "chambolle/fixed_solver.hpp"
#include "common/rng.hpp"
#include "common/text_table.hpp"

namespace {

using namespace chambolle;

struct RunResult {
  double max_du = 0.0;  ///< max |u - u_clean| over the frame
};

// Runs `pre` clean iterations, flips `bit` of the chosen field at the frame
// center, runs `post` more, and compares u against the unperturbed run.
RunResult run_with_flip(const Matrix<float>& v, int pre, int post, int bit,
                        bool flip_v) {
  const FixedParams fp = FixedParams::from(ChambolleParams{});
  const RegionGeometry geom = RegionGeometry::full_frame(v.rows(), v.cols());
  Matrix<std::int32_t> scratch;

  FixedState clean = make_fixed_state(v);
  fixed_iterate_region(clean, geom, fp, pre + post, scratch);

  FixedState hit = make_fixed_state(v);
  fixed_iterate_region(hit, geom, fp, pre, scratch);
  const int r = v.rows() / 2, c = v.cols() / 2;
  if (flip_v)
    hit.v(r, c) = fx::saturate_bits(hit.v(r, c) ^ (1 << bit), fx::kVBits);
  else
    hit.px(r, c) = fx::saturate_bits(hit.px(r, c) ^ (1 << bit), fx::kPBits);
  fixed_iterate_region(hit, geom, fp, post, scratch);

  const Matrix<std::int32_t> u_clean = fixed_recover_u(clean, geom, fp.theta_q);
  const Matrix<std::int32_t> u_hit = fixed_recover_u(hit, geom, fp.theta_q);
  RunResult out;
  for (std::size_t i = 0; i < u_clean.size(); ++i)
    out.max_du = std::max(
        out.max_du, std::abs(static_cast<double>(u_hit.data()[i]) -
                             u_clean.data()[i]) /
                        fx::kOne);
  return out;
}

}  // namespace

int main() {
  Rng rng(77);
  const Matrix<float> v = random_image(rng, 48, 48, -2.f, 2.f);

  std::printf("SINGLE-EVENT-UPSET RESILIENCE OF THE ON-CHIP STATE\n");
  std::printf("(one bit flipped at the frame center after 20 iterations; "
              "max |delta u| after N more iterations)\n\n");

  std::printf("Flip in the dual state px (transient — contraction heals it):\n");
  TextTable dual({"Bit flipped", "after 1 it", "after 5", "after 20",
                  "after 60"});
  for (const int bit : {0, 4, 8}) {  // LSB, mid, sign of the 9-bit field
    std::vector<std::string> row{"bit " + std::to_string(bit)};
    for (const int post : {1, 5, 20, 60})
      row.push_back(TextTable::num(
          run_with_flip(v, 20, post, bit, false).max_du, 5));
    dual.add_row(row);
  }
  dual.render(std::cout);

  std::printf("\nFlip in the input v (persistent but spatially confined):\n");
  TextTable vin({"Bit flipped", "after 1 it", "after 5", "after 20",
                 "after 60"});
  for (const int bit : {0, 6, 12}) {
    std::vector<std::string> row{"bit " + std::to_string(bit)};
    for (const int post : {1, 5, 20, 60})
      row.push_back(TextTable::num(
          run_with_flip(v, 20, post, bit, true).max_du, 5));
    vin.add_row(row);
  }
  vin.render(std::cout);

  const double healed = run_with_flip(v, 20, 60, 8, false).max_du;
  const double persistent = run_with_flip(v, 20, 60, 12, true).max_du;
  std::printf("\nConclusions:\n");
  std::printf("  dual-state flips decay to the quantization floor "
              "(%.5f after 60 iterations) — no scrubbing needed for p;\n",
              healed);
  std::printf("  input flips persist (%.3f) — v is the field worth "
              "protecting (parity on the 13-bit subfield would cost 1 spare "
              "bit already present in the 32-bit word).\n",
              persistent);
  return healed < 0.05 && persistent > healed ? 0 : 1;
}
