// micro_chambolle — google-benchmark microbenchmarks of the solver backends
// (experiment E9): sequential float reference, tiled parallel solver at
// several merge depths and thread counts, and the fixed-point datapath
// model.  Throughput is reported in pixel-iterations/second.
#include <benchmark/benchmark.h>

#include "chambolle/chambolle_pock.hpp"
#include "chambolle/fixed_solver.hpp"
#include "chambolle/merged.hpp"
#include "chambolle/row_parallel.hpp"
#include "chambolle/solver.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "telemetry/bench_report.hpp"

namespace {

using namespace chambolle;

Matrix<float> bench_field(int n) {
  Rng rng(static_cast<std::uint64_t>(n));
  return random_image(rng, n, n, -2.f, 2.f);
}

ChambolleParams bench_params(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

void set_throughput(benchmark::State& state, int n, int iterations) {
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          n * iterations);
}

void BM_ScalarSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(10);
  for (auto _ : state) benchmark::DoNotOptimize(solve(v, params).u.data());
  set_throughput(state, n, 10);
}
BENCHMARK(BM_ScalarSolver)->Arg(64)->Arg(128)->Arg(256);

void BM_TiledSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(16);
  TiledSolverOptions opt;
  opt.merge_iterations = 4;
  opt.num_threads = threads;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_tiled(v, params, opt).u.data());
  set_throughput(state, n, 16);
}
BENCHMARK(BM_TiledSolver)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({256, 1})
    ->Args({256, 4});

void BM_TiledSolverMergeDepth(benchmark::State& state) {
  const int merge = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(192);
  const ChambolleParams params = bench_params(16);
  TiledSolverOptions opt;
  opt.tile_rows = 64;
  opt.tile_cols = 64;
  opt.merge_iterations = merge;
  opt.num_threads = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_tiled(v, params, opt).u.data());
  set_throughput(state, 192, 16);
}
BENCHMARK(BM_TiledSolverMergeDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_FixedSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(10);
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_fixed(v, params).u.data());
  set_throughput(state, n, 10);
}
BENCHMARK(BM_FixedSolver)->Arg(64)->Arg(128);

void BM_RowParallelSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(16);
  RowParallelOptions opt;
  opt.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_row_parallel(v, params, opt).u.data());
  set_throughput(state, n, 16);
}
BENCHMARK(BM_RowParallelSolver)->Args({128, 1})->Args({128, 4});

void BM_ChambollePock(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  ChambollePockParams params;
  params.iterations = 10;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_chambolle_pock(v, params).u.data());
  set_throughput(state, n, 10);
}
BENCHMARK(BM_ChambollePock)->Arg(64)->Arg(128);

void BM_MergedUpdateKernel(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int n = 64;
  const Matrix<float> v = bench_field(n);
  Matrix<float> px(n, n), py(n, n);
  const ChambolleParams params = bench_params(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        merged_update(px, py, v, n / 2, n / 2, 4, 4, depth, params).px.data());
  state.SetItemsProcessed(state.iterations() * 16 * depth);
}
BENCHMARK(BM_MergedUpdateKernel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SingleIteration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(1);
  Matrix<float> px(n, n), py(n, n), scratch;
  const RegionGeometry geom = RegionGeometry::full_frame(n, n);
  for (auto _ : state) {
    iterate_region(px, py, v, geom, params, 1, scratch);
    benchmark::DoNotOptimize(px.data());
  }
  set_throughput(state, n, 1);
}
BENCHMARK(BM_SingleIteration)->Arg(128)->Arg(512);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): identical run semantics, plus a
// machine-readable BENCH_micro_chambolle.json artifact after the run.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const chambolle::Stopwatch clock;
  benchmark::RunSpecifiedBenchmarks();
  const double wall_ms = clock.milliseconds();
  benchmark::Shutdown();
  chambolle::telemetry::write_bench_report(
      "micro_chambolle",
      {{"suite", "google-benchmark"},
       {"benchmarks",
        "scalar/tiled/merge-depth/fixed/row-parallel/chambolle-pock/"
        "merged-kernel/single-iteration"}},
      wall_ms);
  return 0;
}
