// micro_chambolle — google-benchmark microbenchmarks of the solver backends
// (experiment E9): sequential float reference, tiled parallel solver at
// several merge depths and thread counts, the persistent-pool vs
// spawn-per-pass execution engines, and the fixed-point datapath model.
// Throughput is reported in pixel-iterations/second.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "chambolle/chambolle_pock.hpp"
#include "chambolle/fixed_solver.hpp"
#include "chambolle/merged.hpp"
#include "chambolle/row_parallel.hpp"
#include "chambolle/solver.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/bench_report.hpp"

namespace {

using namespace chambolle;

// The paper's Table-2 software-comparison frame (316 x 252, i.e. width x
// height), used by the engine-scaling sections below.
constexpr int kTable2Rows = 252;
constexpr int kTable2Cols = 316;

Matrix<float> bench_field2(int rows, int cols) {
  Rng rng(static_cast<std::uint64_t>(rows) * 1000 + cols);
  return random_image(rng, rows, cols, -2.f, 2.f);
}

Matrix<float> bench_field(int n) {
  Rng rng(static_cast<std::uint64_t>(n));
  return random_image(rng, n, n, -2.f, 2.f);
}

ChambolleParams bench_params(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

void set_throughput(benchmark::State& state, int n, int iterations) {
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          n * iterations);
}

void BM_ScalarSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(10);
  for (auto _ : state) benchmark::DoNotOptimize(solve(v, params).u.data());
  set_throughput(state, n, 10);
}
BENCHMARK(BM_ScalarSolver)->Arg(64)->Arg(128)->Arg(256);

void BM_TiledSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(16);
  TiledSolverOptions opt;
  opt.merge_iterations = 4;
  opt.num_threads = threads;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_tiled(v, params, opt).u.data());
  set_throughput(state, n, 16);
}
BENCHMARK(BM_TiledSolver)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({256, 1})
    ->Args({256, 4});

void BM_TiledSolverMergeDepth(benchmark::State& state) {
  const int merge = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(192);
  const ChambolleParams params = bench_params(16);
  TiledSolverOptions opt;
  opt.tile_rows = 64;
  opt.tile_cols = 64;
  opt.merge_iterations = merge;
  opt.num_threads = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_tiled(v, params, opt).u.data());
  set_throughput(state, 192, 16);
}
BENCHMARK(BM_TiledSolverMergeDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Pooled vs spawn-per-pass engine scaling on the Table-2 frame: 20
// iterations merged 5 at a time, so a solve is 4 passes — exactly the
// many-small-passes regime where per-pass thread creation dominates.
void BM_TiledEngine(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto exec = state.range(1) == 0 ? parallel::Execution::kPool
                                        : parallel::Execution::kSpawn;
  const Matrix<float> v = bench_field2(kTable2Rows, kTable2Cols);
  const ChambolleParams params = bench_params(20);
  TiledSolverOptions opt;
  opt.tile_rows = 88;
  opt.tile_cols = 92;
  opt.merge_iterations = 5;
  opt.num_threads = threads;
  opt.execution = exec;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_tiled(v, params, opt).u.data());
  state.SetItemsProcessed(state.iterations() * kTable2Rows * kTable2Cols * 20);
  state.SetLabel(exec == parallel::Execution::kPool ? "pool" : "spawn");
}
BENCHMARK(BM_TiledEngine)
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1});

// Same comparison for the barrier-per-iteration schedule, where the spawn
// engine pays TWO spawn/join rounds per iteration.
void BM_RowParallelEngine(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto exec = state.range(1) == 0 ? parallel::Execution::kPool
                                        : parallel::Execution::kSpawn;
  const Matrix<float> v = bench_field2(kTable2Rows, kTable2Cols);
  const ChambolleParams params = bench_params(20);
  RowParallelOptions opt;
  opt.num_threads = threads;
  opt.execution = exec;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_row_parallel(v, params, opt).u.data());
  state.SetItemsProcessed(state.iterations() * kTable2Rows * kTable2Cols * 20);
  state.SetLabel(exec == parallel::Execution::kPool ? "pool" : "spawn");
}
BENCHMARK(BM_RowParallelEngine)
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0})
    ->Args({2, 1})->Args({4, 1})->Args({8, 1});

void BM_FixedSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(10);
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_fixed(v, params).u.data());
  set_throughput(state, n, 10);
}
BENCHMARK(BM_FixedSolver)->Arg(64)->Arg(128);

void BM_RowParallelSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(16);
  RowParallelOptions opt;
  opt.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_row_parallel(v, params, opt).u.data());
  set_throughput(state, n, 16);
}
BENCHMARK(BM_RowParallelSolver)->Args({128, 1})->Args({128, 4});

void BM_ChambollePock(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  ChambollePockParams params;
  params.iterations = 10;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_chambolle_pock(v, params).u.data());
  set_throughput(state, n, 10);
}
BENCHMARK(BM_ChambollePock)->Arg(64)->Arg(128);

void BM_MergedUpdateKernel(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int n = 64;
  const Matrix<float> v = bench_field(n);
  Matrix<float> px(n, n), py(n, n);
  const ChambolleParams params = bench_params(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        merged_update(px, py, v, n / 2, n / 2, 4, 4, depth, params).px.data());
  state.SetItemsProcessed(state.iterations() * 16 * depth);
}
BENCHMARK(BM_MergedUpdateKernel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SingleIteration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(1);
  Matrix<float> px(n, n), py(n, n), scratch;
  const RegionGeometry geom = RegionGeometry::full_frame(n, n);
  for (auto _ : state) {
    iterate_region(px, py, v, geom, params, 1, scratch);
    benchmark::DoNotOptimize(px.data());
  }
  set_throughput(state, n, 1);
}
BENCHMARK(BM_SingleIteration)->Arg(128)->Arg(512);

// Direct stopwatch measurement of pooled vs spawn at a given width, so the
// BENCH json carries the engine speedup as first-class numbers (the perf
// trajectory CI tracks), independent of google-benchmark's own output.
struct EngineSpeedup {
  double pool_ms = 0.0;
  double spawn_ms = 0.0;
  [[nodiscard]] double speedup() const {
    return pool_ms > 0.0 ? spawn_ms / pool_ms : 0.0;
  }
};

template <typename SolveFn>
double best_ms_of(const SolveFn& fn, int repeats) {
  Stopwatch clock;
  double best = -1.0;
  for (int i = 0; i < repeats; ++i) {
    clock.lap();
    fn();
    const double ms = 1e3 * clock.lap();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

EngineSpeedup measure_tiled_engines(int threads) {
  const Matrix<float> v = bench_field2(kTable2Rows, kTable2Cols);
  const ChambolleParams params = bench_params(20);
  TiledSolverOptions opt;
  // Merge depth 1 = halo exchange every iteration, the paper's per-iteration
  // sliding-window sync regime and the spawn engine's worst case (one thread
  // team per pass); this is exactly the overhead the resident pool removes.
  opt.merge_iterations = 1;
  opt.num_threads = threads;
  EngineSpeedup out;
  opt.execution = parallel::Execution::kPool;
  (void)solve_tiled(v, params, opt);  // warm up the resident workers
  out.pool_ms = best_ms_of([&] { (void)solve_tiled(v, params, opt); }, 5);
  opt.execution = parallel::Execution::kSpawn;
  out.spawn_ms = best_ms_of([&] { (void)solve_tiled(v, params, opt); }, 5);
  return out;
}

EngineSpeedup measure_row_parallel_engines(int threads) {
  const Matrix<float> v = bench_field2(kTable2Rows, kTable2Cols);
  const ChambolleParams params = bench_params(20);
  RowParallelOptions opt;
  opt.num_threads = threads;
  EngineSpeedup out;
  opt.execution = parallel::Execution::kPool;
  (void)solve_row_parallel(v, params, opt);
  out.pool_ms =
      best_ms_of([&] { (void)solve_row_parallel(v, params, opt); }, 5);
  opt.execution = parallel::Execution::kSpawn;
  out.spawn_ms =
      best_ms_of([&] { (void)solve_row_parallel(v, params, opt); }, 5);
  return out;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): identical run semantics, plus a
// machine-readable BENCH_micro_chambolle.json artifact after the run.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const chambolle::Stopwatch clock;
  benchmark::RunSpecifiedBenchmarks();

  // Engine trajectory: pooled vs spawn on the Table-2 frame at 8 threads.
  const auto fmt = [](double x) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", x);
    return std::string(buf);
  };
  const EngineSpeedup tiled = measure_tiled_engines(8);
  const EngineSpeedup rowp = measure_row_parallel_engines(8);
  std::printf(
      "\nengine trajectory (316x252, 20 iterations, 8 threads):\n"
      "  tiled        : pool %.3f ms, spawn %.3f ms -> %.2fx\n"
      "  row-parallel : pool %.3f ms, spawn %.3f ms -> %.2fx\n",
      tiled.pool_ms, tiled.spawn_ms, tiled.speedup(), rowp.pool_ms,
      rowp.spawn_ms, rowp.speedup());
  const auto& pool = chambolle::parallel::default_pool();
  std::printf(
      "  pool lifetime: %llu tasks, %llu threads created, %llu barrier "
      "waits\n",
      static_cast<unsigned long long>(pool.tasks()),
      static_cast<unsigned long long>(pool.threads_created()),
      static_cast<unsigned long long>(pool.barrier_waits()));

  const double wall_ms = clock.milliseconds();
  benchmark::Shutdown();
  chambolle::telemetry::write_bench_report(
      "micro_chambolle",
      {{"suite", "google-benchmark"},
       {"benchmarks",
        "scalar/tiled/engine-scaling/merge-depth/fixed/row-parallel/"
        "chambolle-pock/merged-kernel/single-iteration"},
       {"engine_frame", "316x252"},
       {"engine_threads", "8"},
       {"tiled_pool_ms", fmt(tiled.pool_ms)},
       {"tiled_spawn_ms", fmt(tiled.spawn_ms)},
       {"tiled_pool_speedup", fmt(tiled.speedup())},
       {"row_parallel_pool_ms", fmt(rowp.pool_ms)},
       {"row_parallel_spawn_ms", fmt(rowp.spawn_ms)},
       {"row_parallel_pool_speedup", fmt(rowp.speedup())},
       {"pool_threads_created", std::to_string(pool.threads_created())}},
      wall_ms);
  return 0;
}
