// micro_chambolle — google-benchmark microbenchmarks of the solver backends
// (experiment E9): sequential float reference, tiled parallel solver at
// several merge depths and thread counts, the persistent-pool vs
// spawn-per-pass execution engines, and the fixed-point datapath model.
// Throughput is reported in pixel-iterations/second.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "chambolle/chambolle_pock.hpp"
#include "chambolle/fixed_solver.hpp"
#include "chambolle/merged.hpp"
#include "chambolle/resident_tiled.hpp"
#include "chambolle/row_parallel.hpp"
#include "chambolle/solver.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "kernels/kernel.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace chambolle;

// The paper's Table-2 software-comparison frame (316 x 252, i.e. width x
// height), used by the engine-scaling sections below.
constexpr int kTable2Rows = 252;
constexpr int kTable2Cols = 316;

Matrix<float> bench_field2(int rows, int cols) {
  Rng rng(static_cast<std::uint64_t>(rows) * 1000 + cols);
  return random_image(rng, rows, cols, -2.f, 2.f);
}

Matrix<float> bench_field(int n) {
  Rng rng(static_cast<std::uint64_t>(n));
  return random_image(rng, n, n, -2.f, 2.f);
}

ChambolleParams bench_params(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

void set_throughput(benchmark::State& state, int n, int iterations) {
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          n * iterations);
}

void BM_ScalarSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(10);
  for (auto _ : state) benchmark::DoNotOptimize(solve(v, params).u.data());
  set_throughput(state, n, 10);
}
BENCHMARK(BM_ScalarSolver)->Arg(64)->Arg(128)->Arg(256);

void BM_TiledSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(16);
  TiledSolverOptions opt;
  opt.merge_iterations = 4;
  opt.num_threads = threads;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_tiled(v, params, opt).u.data());
  set_throughput(state, n, 16);
}
BENCHMARK(BM_TiledSolver)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({256, 1})
    ->Args({256, 4});

void BM_ResidentSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(16);
  TiledSolverOptions opt;
  opt.merge_iterations = 4;
  opt.num_threads = threads;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_resident(v, params, opt).u.data());
  set_throughput(state, n, 16);
}
BENCHMARK(BM_ResidentSolver)
    ->Args({128, 1})
    ->Args({128, 4})
    ->Args({256, 1})
    ->Args({256, 4});

void BM_TiledSolverMergeDepth(benchmark::State& state) {
  const int merge = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(192);
  const ChambolleParams params = bench_params(16);
  TiledSolverOptions opt;
  opt.tile_rows = 64;
  opt.tile_cols = 64;
  opt.merge_iterations = merge;
  opt.num_threads = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_tiled(v, params, opt).u.data());
  set_throughput(state, 192, 16);
}
BENCHMARK(BM_TiledSolverMergeDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Pooled vs spawn-per-pass engine scaling on the Table-2 frame: 20
// iterations merged 5 at a time, so a solve is 4 passes — exactly the
// many-small-passes regime where per-pass thread creation dominates.
void BM_TiledEngine(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto exec = state.range(1) == 0 ? parallel::Execution::kPool
                                        : parallel::Execution::kSpawn;
  const Matrix<float> v = bench_field2(kTable2Rows, kTable2Cols);
  const ChambolleParams params = bench_params(20);
  TiledSolverOptions opt;
  opt.tile_rows = 88;
  opt.tile_cols = 92;
  opt.merge_iterations = 5;
  opt.num_threads = threads;
  opt.execution = exec;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_tiled(v, params, opt).u.data());
  state.SetItemsProcessed(state.iterations() * kTable2Rows * kTable2Cols * 20);
  state.SetLabel(exec == parallel::Execution::kPool ? "pool" : "spawn");
}
BENCHMARK(BM_TiledEngine)
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1});

// Same comparison for the barrier-per-iteration schedule, where the spawn
// engine pays TWO spawn/join rounds per iteration.
void BM_RowParallelEngine(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto exec = state.range(1) == 0 ? parallel::Execution::kPool
                                        : parallel::Execution::kSpawn;
  const Matrix<float> v = bench_field2(kTable2Rows, kTable2Cols);
  const ChambolleParams params = bench_params(20);
  RowParallelOptions opt;
  opt.num_threads = threads;
  opt.execution = exec;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_row_parallel(v, params, opt).u.data());
  state.SetItemsProcessed(state.iterations() * kTable2Rows * kTable2Cols * 20);
  state.SetLabel(exec == parallel::Execution::kPool ? "pool" : "spawn");
}
BENCHMARK(BM_RowParallelEngine)
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0})
    ->Args({2, 1})->Args({4, 1})->Args({8, 1});

void BM_FixedSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(10);
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_fixed(v, params).u.data());
  set_throughput(state, n, 10);
}
BENCHMARK(BM_FixedSolver)->Arg(64)->Arg(128);

void BM_RowParallelSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(16);
  RowParallelOptions opt;
  opt.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_row_parallel(v, params, opt).u.data());
  set_throughput(state, n, 16);
}
BENCHMARK(BM_RowParallelSolver)->Args({128, 1})->Args({128, 4});

void BM_ChambollePock(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  ChambollePockParams params;
  params.iterations = 10;
  for (auto _ : state)
    benchmark::DoNotOptimize(solve_chambolle_pock(v, params).u.data());
  set_throughput(state, n, 10);
}
BENCHMARK(BM_ChambollePock)->Arg(64)->Arg(128);

void BM_MergedUpdateKernel(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int n = 64;
  const Matrix<float> v = bench_field(n);
  Matrix<float> px(n, n), py(n, n);
  const ChambolleParams params = bench_params(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        merged_update(px, py, v, n / 2, n / 2, 4, 4, depth, params).px.data());
  state.SetItemsProcessed(state.iterations() * 16 * depth);
}
BENCHMARK(BM_MergedUpdateKernel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SingleIteration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(1);
  Matrix<float> px(n, n), py(n, n), scratch;
  const RegionGeometry geom = RegionGeometry::full_frame(n, n);
  for (auto _ : state) {
    iterate_region(px, py, v, geom, params, 1, scratch);
    benchmark::DoNotOptimize(px.data());
  }
  set_throughput(state, n, 1);
}
BENCHMARK(BM_SingleIteration)->Arg(128)->Arg(512);

// The seed solver's single iteration (two passes over a full Term frame,
// border branches per element), kept as an in-binary baseline so the fused
// kernel's speedup is measured directly rather than against a remembered
// number.  Full-frame geometry only, matching BM_SingleIteration.
void seed_iterate_full(Matrix<float>& px, Matrix<float>& py,
                       const Matrix<float>& v, const ChambolleParams& params,
                       Matrix<float>& term) {
  const int rows = v.rows(), cols = v.cols();
  term.resize(rows, cols);
  const float inv_theta = 1.f / params.theta;
  const float step = params.step();
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const float dx = c == 0           ? px(r, c)
                       : c == cols - 1  ? -px(r, c - 1)
                                        : px(r, c) - px(r, c - 1);
      const float dy = r == 0           ? py(r, c)
                       : r == rows - 1  ? -py(r - 1, c)
                                        : py(r, c) - py(r - 1, c);
      term(r, c) = dx + dy - v(r, c) * inv_theta;
    }
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const float t = term(r, c);
      const float term1 = c == cols - 1 ? 0.f : term(r, c + 1) - t;
      const float term2 = r == rows - 1 ? 0.f : term(r + 1, c) - t;
      const float grad = std::sqrt(term1 * term1 + term2 * term2);
      const float denom = 1.f + step * grad;
      px(r, c) = (px(r, c) + step * term1) / denom;
      py(r, c) = (py(r, c) + step * term2) / denom;
    }
}

void BM_SeedSingleIteration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(1);
  Matrix<float> px(n, n), py(n, n), term;
  for (auto _ : state) {
    seed_iterate_full(px, py, v, params, term);
    benchmark::DoNotOptimize(px.data());
  }
  set_throughput(state, n, 1);
}
BENCHMARK(BM_SeedSingleIteration)->Arg(128)->Arg(512);

// Single iteration with the kernel backend pinned.  Registered dynamically
// in main() for exactly the backends this machine can run.
void BM_SingleIterationBackend(benchmark::State& state,
                               kernels::Backend backend) {
  kernels::force_backend(backend);
  const int n = static_cast<int>(state.range(0));
  const Matrix<float> v = bench_field(n);
  const ChambolleParams params = bench_params(1);
  Matrix<float> px(n, n), py(n, n), scratch;
  const RegionGeometry geom = RegionGeometry::full_frame(n, n);
  for (auto _ : state) {
    iterate_region(px, py, v, geom, params, 1, scratch);
    benchmark::DoNotOptimize(px.data());
  }
  kernels::reset_backend();
  set_throughput(state, n, 1);
}

void register_backend_benchmarks() {
  for (const kernels::Backend b : kernels::available_backends()) {
    const std::string name = std::string("BM_SingleIterationBackend/") +
                             kernels::backend_name(b);
    benchmark::RegisterBenchmark(name.c_str(), BM_SingleIterationBackend, b)
        ->Arg(512);
  }
}

// Direct stopwatch measurements for the BENCH json (the perf trajectories
// CI tracks), independent of google-benchmark's own output.  Each figure is
// a median-of-N with min/max alongside, so a noisy run is visible as spread
// instead of silently biasing a single number.
constexpr int kTrajectoryRepeats = 7;

template <typename SolveFn>
telemetry::RepeatStats repeat_ms_of(const SolveFn& fn, int repeats) {
  Stopwatch clock;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    clock.lap();
    fn();
    samples.push_back(1e3 * clock.lap());
  }
  return telemetry::repeat_stats(std::move(samples));
}

struct EngineSpeedup {
  telemetry::RepeatStats pool_ms;
  telemetry::RepeatStats spawn_ms;
  [[nodiscard]] double speedup() const {
    return pool_ms.median > 0.0 ? spawn_ms.median / pool_ms.median : 0.0;
  }
};

EngineSpeedup measure_tiled_engines(int threads) {
  const Matrix<float> v = bench_field2(kTable2Rows, kTable2Cols);
  const ChambolleParams params = bench_params(20);
  TiledSolverOptions opt;
  // Merge depth 1 = halo exchange every iteration, the paper's per-iteration
  // sliding-window sync regime and the spawn engine's worst case (one thread
  // team per pass); this is exactly the overhead the resident pool removes.
  opt.merge_iterations = 1;
  opt.num_threads = threads;
  EngineSpeedup out;
  opt.execution = parallel::Execution::kPool;
  (void)solve_tiled(v, params, opt);  // warm up the resident workers
  out.pool_ms = repeat_ms_of([&] { (void)solve_tiled(v, params, opt); },
                             kTrajectoryRepeats);
  opt.execution = parallel::Execution::kSpawn;
  out.spawn_ms = repeat_ms_of([&] { (void)solve_tiled(v, params, opt); },
                              kTrajectoryRepeats);
  return out;
}

EngineSpeedup measure_row_parallel_engines(int threads) {
  const Matrix<float> v = bench_field2(kTable2Rows, kTable2Cols);
  const ChambolleParams params = bench_params(20);
  RowParallelOptions opt;
  opt.num_threads = threads;
  EngineSpeedup out;
  opt.execution = parallel::Execution::kPool;
  (void)solve_row_parallel(v, params, opt);
  out.pool_ms = repeat_ms_of([&] { (void)solve_row_parallel(v, params, opt); },
                             kTrajectoryRepeats);
  opt.execution = parallel::Execution::kSpawn;
  out.spawn_ms = repeat_ms_of(
      [&] { (void)solve_row_parallel(v, params, opt); }, kTrajectoryRepeats);
  return out;
}

// Kernel trajectory for the BENCH json: seed two-pass vs fused kernel per
// backend, single thread on the Table-2 frame — the perf number the kernel
// layer is accountable for.
struct KernelTrajectory {
  telemetry::RepeatStats seed_ms;
  std::vector<std::pair<std::string, telemetry::RepeatStats>> backend_ms;
};

KernelTrajectory measure_kernel_backends() {
  const Matrix<float> v = bench_field2(kTable2Rows, kTable2Cols);
  const ChambolleParams params = bench_params(1);
  constexpr int kIters = 20;
  KernelTrajectory out;
  {
    Matrix<float> px(kTable2Rows, kTable2Cols), py(kTable2Rows, kTable2Cols),
        term;
    out.seed_ms = repeat_ms_of(
        [&] {
          for (int i = 0; i < kIters; ++i)
            seed_iterate_full(px, py, v, params, term);
        },
        kTrajectoryRepeats);
  }
  for (const kernels::Backend b : kernels::available_backends()) {
    kernels::force_backend(b);
    Matrix<float> px(kTable2Rows, kTable2Cols), py(kTable2Rows, kTable2Cols),
        scratch;
    const RegionGeometry geom =
        RegionGeometry::full_frame(kTable2Rows, kTable2Cols);
    const telemetry::RepeatStats ms = repeat_ms_of(
        [&] { iterate_region(px, py, v, geom, params, kIters, scratch); },
        kTrajectoryRepeats);
    out.backend_ms.emplace_back(kernels::backend_name(b), ms);
  }
  kernels::reset_backend();
  return out;
}

// Resident-tile engine vs the reload-per-pass tiled solver on the paper's
// 1024 x 768 frame (the acceptance figure of the halo-exchange engine).
// `one_shot` includes engine construction per solve; `steady` reuses the
// engine across solves (the TV-L1 warp regime, only duals re-zeroed).
struct ResidentComparison {
  telemetry::RepeatStats reload_ms;
  telemetry::RepeatStats one_shot_ms;
  telemetry::RepeatStats steady_ms;
  ResidentTiledStats stats;  // of the last one-shot solve
  [[nodiscard]] double speedup() const {
    return one_shot_ms.median > 0.0 ? reload_ms.median / one_shot_ms.median
                                    : 0.0;
  }
  [[nodiscard]] double steady_speedup() const {
    return steady_ms.median > 0.0 ? reload_ms.median / steady_ms.median : 0.0;
  }
};

ResidentComparison measure_resident_vs_reload(int threads) {
  constexpr int kRows = 768, kCols = 1024;
  const Matrix<float> v = bench_field2(kRows, kCols);
  const ChambolleParams params = bench_params(20);
  TiledSolverOptions opt;  // the paper's 88 x 92 window, merge depth 4
  opt.num_threads = threads;
  ResidentComparison out;
  (void)solve_tiled(v, params, opt);  // warm up pool + page in the frame
  out.reload_ms = repeat_ms_of([&] { (void)solve_tiled(v, params, opt); },
                               kTrajectoryRepeats);
  out.one_shot_ms = repeat_ms_of(
      [&] { (void)solve_resident(v, params, opt, &out.stats); },
      kTrajectoryRepeats);
  ResidentTiledEngine engine(v, params, opt);
  engine.run(params.iterations);  // warm the resident buffers
  out.steady_ms = repeat_ms_of(
      [&] {
        engine.reset_duals();
        engine.run(params.iterations);
      },
      kTrajectoryRepeats);
  return out;
}

// Adaptive vs fixed-budget resident solve on a half-static workload: the
// left half of the frame is constant, so its tiles' duals still after a few
// passes and the adaptive engine retires them — the content regime (static
// background, moving subject) the per-tile early stopping exists for.
Matrix<float> half_static_field(int rows, int cols) {
  Rng rng(static_cast<std::uint64_t>(rows) * 7177 + cols);
  Matrix<float> v = random_image(rng, rows, cols, -2.f, 2.f);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols / 2; ++c) v(r, c) = 0.25f;
  return v;
}

struct AdaptiveComparison {
  telemetry::RepeatStats fixed_ms;
  telemetry::RepeatStats adaptive_ms;
  ResidentAdaptiveReport report;  // of the last adaptive solve
  [[nodiscard]] double speedup() const {
    return adaptive_ms.median > 0.0 ? fixed_ms.median / adaptive_ms.median
                                    : 0.0;
  }
};

AdaptiveComparison measure_adaptive_vs_fixed(int threads) {
  constexpr int kRows = 768, kCols = 1024, kIters = 100;
  const Matrix<float> v = half_static_field(kRows, kCols);
  const ChambolleParams params = bench_params(kIters);
  TiledSolverOptions opt;  // the paper's 88 x 92 window, merge depth 4
  opt.num_threads = threads;
  ResidentAdaptiveOptions adaptive;  // tol 1e-4, patience 2
  adaptive.max_passes = 0;           // = the fixed budget
  AdaptiveComparison out;
  (void)solve_resident(v, params, opt);  // warm up pool + page in the frame
  out.fixed_ms = repeat_ms_of([&] { (void)solve_resident(v, params, opt); },
                              kTrajectoryRepeats);
  out.adaptive_ms = repeat_ms_of(
      [&] {
        (void)solve_resident_adaptive(v, params, opt, adaptive, &out.report);
      },
      kTrajectoryRepeats);
  return out;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): identical run semantics, plus a
// machine-readable BENCH_micro_chambolle.json artifact after the run.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  register_backend_benchmarks();
  const chambolle::Stopwatch clock;
  benchmark::RunSpecifiedBenchmarks();

  // Engine trajectory: pooled vs spawn on the Table-2 frame at 8 threads.
  const auto fmt = [](double x) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", x);
    return std::string(buf);
  };
  const EngineSpeedup tiled = measure_tiled_engines(8);
  const EngineSpeedup rowp = measure_row_parallel_engines(8);
  std::printf(
      "\nengine trajectory (316x252, 20 iterations, 8 threads, median of "
      "%d):\n"
      "  tiled        : pool %.3f ms, spawn %.3f ms -> %.2fx\n"
      "  row-parallel : pool %.3f ms, spawn %.3f ms -> %.2fx\n",
      kTrajectoryRepeats, tiled.pool_ms.median, tiled.spawn_ms.median,
      tiled.speedup(), rowp.pool_ms.median, rowp.spawn_ms.median,
      rowp.speedup());
  const auto& pool = chambolle::parallel::default_pool();
  std::printf(
      "  pool lifetime: %llu tasks, %llu threads created, %llu barrier "
      "waits\n",
      static_cast<unsigned long long>(pool.tasks()),
      static_cast<unsigned long long>(pool.threads_created()),
      static_cast<unsigned long long>(pool.barrier_waits()));

  // Kernel trajectory: seed two-pass vs fused kernel, per backend.
  const KernelTrajectory kt = measure_kernel_backends();
  std::printf(
      "\nkernel trajectory (316x252, 20 iterations, 1 thread, median of "
      "%d):\n"
      "  seed two-pass : %.3f ms\n",
      kTrajectoryRepeats, kt.seed_ms.median);
  for (const auto& [name, ms] : kt.backend_ms)
    std::printf("  %-13s : %.3f ms -> %.2fx vs seed\n", name.c_str(),
                ms.median, kt.seed_ms.median / ms.median);

  // Resident-vs-reload trajectory (the halo-exchange acceptance figure).
  // Telemetry goes on here so the report's metrics snapshot carries the
  // tiles.* counters (halo bytes, passes, stall time) of these solves.
  chambolle::telemetry::set_enabled(true);
  const ResidentComparison res = measure_resident_vs_reload(4);
  std::printf(
      "\nresident trajectory (1024x768, 20 iterations, 4 threads, median of "
      "%d):\n"
      "  reload tiled   : %.3f ms\n"
      "  resident       : %.3f ms -> %.2fx\n"
      "  resident steady: %.3f ms -> %.2fx (engine reused, TV-L1 regime)\n"
      "  halo traffic   : %zu floats/pass vs %zu floats/pass reloaded\n",
      kTrajectoryRepeats, res.reload_ms.median, res.one_shot_ms.median,
      res.speedup(), res.steady_ms.median, res.steady_speedup(),
      res.stats.halo_elements_per_pass,
      static_cast<std::size_t>(4) * 768 * 1024);

  // Adaptive-vs-fixed trajectory: per-tile early stopping on a half-static
  // frame (the acceptance figure of the adaptive engine — measurably fewer
  // tile-passes than the fixed budget on >= 50% smooth content).
  const AdaptiveComparison ad = measure_adaptive_vs_fixed(4);
  std::printf(
      "\nadaptive trajectory (1024x768 half-static, 100 iterations, 4 "
      "threads, median of %d):\n"
      "  resident fixed   : %.3f ms (%zu tile-passes)\n"
      "  resident adaptive: %.3f ms -> %.2fx (%zu tile-passes, %.0f%% "
      "saved, %zu/%zu tiles converged)\n",
      kTrajectoryRepeats, ad.fixed_ms.median,
      ad.report.fixed_budget_passes(), ad.adaptive_ms.median, ad.speedup(),
      ad.report.total_tile_passes, 100.0 * ad.report.pass_savings(),
      ad.report.tiles_converged, ad.report.tiles);

  // Lane utilization of one profiled resident solve — the measurement the
  // profiler exists for: how much of each lane's wall time the epoch-graph
  // schedule converts into kernel work on this machine.
  namespace tel = chambolle::telemetry;
  tel::UtilizationReport profile;
  {
    constexpr int kProfRows = 768, kProfCols = 1024, kProfThreads = 4;
    const chambolle::Matrix<float> v = bench_field2(kProfRows, kProfCols);
    const chambolle::ChambolleParams params = bench_params(20);
    chambolle::TiledSolverOptions opt;
    opt.num_threads = kProfThreads;
    tel::Profiler::instance().begin(kProfThreads);
    (void)chambolle::solve_resident(v, params, opt);
    profile = tel::Profiler::instance().end();
  }
  std::printf("\nresident lane utilization (1024x768, 4 threads, profiled):\n");
  std::fputs(profile.to_table().c_str(), stdout);

  chambolle::telemetry::BenchParams report{
      {"suite", "google-benchmark"},
      {"benchmarks",
       "scalar/tiled/resident/engine-scaling/merge-depth/fixed/row-parallel/"
       "chambolle-pock/merged-kernel/single-iteration/kernel-backends"},
      {"engine_frame", "316x252"},
      {"engine_threads", "8"},
      {"trajectory_repeats", std::to_string(kTrajectoryRepeats)},
      {"tiled_pool_ms", fmt(tiled.pool_ms.median)},
      {"tiled_spawn_ms", fmt(tiled.spawn_ms.median)},
      {"tiled_pool_speedup", fmt(tiled.speedup())},
      {"row_parallel_pool_ms", fmt(rowp.pool_ms.median)},
      {"row_parallel_spawn_ms", fmt(rowp.spawn_ms.median)},
      {"row_parallel_pool_speedup", fmt(rowp.speedup())},
      {"pool_threads_created", std::to_string(pool.threads_created())},
      {"kernel_backend_auto",
       chambolle::kernels::backend_name(chambolle::kernels::active_backend())},
      {"kernel_seed_ms", fmt(kt.seed_ms.median)}};
  chambolle::telemetry::append_repeat_stats(report, "tiled_pool_ms",
                                            tiled.pool_ms);
  chambolle::telemetry::append_repeat_stats(report, "tiled_spawn_ms",
                                            tiled.spawn_ms);
  chambolle::telemetry::append_repeat_stats(report, "row_parallel_pool_ms",
                                            rowp.pool_ms);
  chambolle::telemetry::append_repeat_stats(report, "row_parallel_spawn_ms",
                                            rowp.spawn_ms);
  chambolle::telemetry::append_repeat_stats(report, "kernel_seed_ms",
                                            kt.seed_ms);
  for (const auto& [name, ms] : kt.backend_ms) {
    report.emplace_back("kernel_" + name + "_ms", fmt(ms.median));
    report.emplace_back("kernel_" + name + "_speedup_vs_seed",
                        fmt(kt.seed_ms.median / ms.median));
    chambolle::telemetry::append_repeat_stats(report, "kernel_" + name + "_ms",
                                              ms);
  }
  // The resident-engine acceptance block: 1024 x 768, 4 threads, paper
  // window.  halo_fraction_of_reload = per-pass mailbox floats over the
  // reload engine's ~4 floats/cell frame round-trip.
  report.emplace_back("resident_frame", "1024x768");
  report.emplace_back("resident_threads", "4");
  chambolle::telemetry::append_repeat_stats(report, "resident_reload_ms",
                                            res.reload_ms);
  chambolle::telemetry::append_repeat_stats(report, "resident_ms",
                                            res.one_shot_ms);
  chambolle::telemetry::append_repeat_stats(report, "resident_steady_ms",
                                            res.steady_ms);
  report.emplace_back("resident_speedup_vs_reload", fmt(res.speedup()));
  report.emplace_back("resident_steady_speedup_vs_reload",
                      fmt(res.steady_speedup()));
  report.emplace_back("resident_halo_floats_per_pass",
                      std::to_string(res.stats.halo_elements_per_pass));
  report.emplace_back(
      "resident_halo_fraction_of_reload",
      fmt(static_cast<double>(res.stats.halo_elements_per_pass) /
          (4.0 * 768.0 * 1024.0)));
  // The adaptive acceptance block: same frame size, half-static content,
  // 100 iterations.  The pass-savings and tile-convergence figures are what
  // EXPERIMENTS.md cites; the two _ms medians feed the CI perf gate.
  report.emplace_back("adaptive_frame", "1024x768-half-static");
  report.emplace_back("adaptive_threads", "4");
  report.emplace_back("adaptive_iterations", "100");
  chambolle::telemetry::append_repeat_stats(report, "adaptive_fixed_ms",
                                            ad.fixed_ms);
  chambolle::telemetry::append_repeat_stats(report, "adaptive_ms",
                                            ad.adaptive_ms);
  report.emplace_back("adaptive_speedup_vs_fixed", fmt(ad.speedup()));
  report.emplace_back("adaptive_tiles", std::to_string(ad.report.tiles));
  report.emplace_back("adaptive_tiles_converged",
                      std::to_string(ad.report.tiles_converged));
  report.emplace_back("adaptive_total_tile_passes",
                      std::to_string(ad.report.total_tile_passes));
  report.emplace_back("adaptive_fixed_budget_passes",
                      std::to_string(ad.report.fixed_budget_passes()));
  report.emplace_back("adaptive_pass_savings", fmt(ad.report.pass_savings()));
  report.emplace_back("adaptive_stolen_passes",
                      std::to_string(ad.report.stolen_passes));
  report.emplace_back("resident_busy_fraction", fmt(profile.busy_fraction()));
  report.emplace_back("resident_imbalance_ratio",
                      fmt(profile.imbalance_ratio()));
  report.emplace_back(
      "resident_epoch_wait_seconds",
      fmt(profile.total_seconds(tel::LaneCause::kEpochWait)));
  report.emplace_back("resident_mailbox_seconds",
                      fmt(profile.total_seconds(tel::LaneCause::kMailbox)));

  const double wall_ms = clock.milliseconds();
  benchmark::Shutdown();
  chambolle::telemetry::write_bench_report("micro_chambolle", report, wall_ms);
  return 0;
}
