// convergence — the iteration/precision trade that motivates Table II's
// "Iterations" column: how fast the Chambolle fixed point is approached, how
// the dual step tau/theta affects it (Chambolle proved convergence for
// tau <= theta/4 in this discretization; his original bound was 1/8), and
// what the paper's 50/100/200 settings buy in residual terms.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "chambolle/chambolle_pock.hpp"
#include "chambolle/energy.hpp"
#include "chambolle/solver.hpp"
#include "common/rng.hpp"
#include "common/text_table.hpp"

namespace {

using namespace chambolle;

double rms(const Matrix<float>& a, const Matrix<float>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace

int main() {
  const int n = 64;
  Rng rng(31);
  const Matrix<float> v = random_image(rng, n, n, -2.f, 2.f);

  // Ground truth: a deeply converged run.
  ChambolleParams deep;
  deep.iterations = 5000;
  const ChambolleResult star = solve(v, deep);

  std::printf("CHAMBOLLE CONVERGENCE (64x64 random support field)\n\n");
  std::printf("Residual vs iteration count (tau/theta = 1/4):\n");
  TextTable iters({"Iterations", "RMS(u_k - u*)", "Energy gap", "of E gap @50"});
  const double e_star = rof_energy(star.u, v, deep.theta);
  double gap50 = 0.0;
  for (const int k : {10, 25, 50, 100, 200, 400, 800}) {
    ChambolleParams p;
    p.iterations = k;
    const ChambolleResult r = solve(v, p);
    const double gap = rof_energy(r.u, v, p.theta) - e_star;
    if (k == 50) gap50 = gap;
    iters.add_row({std::to_string(k), TextTable::num(rms(r.u, star.u), 5),
                   TextTable::num(gap, 5),
                   gap50 > 0 ? TextTable::num(100.0 * gap / gap50, 1) + "%"
                             : "-"});
  }
  std::cout << iters.to_string();
  std::printf("-> Table II's 200-iteration setting sits deep in the "
              "converged regime; 50 is the paper's fast setting.\n\n");

  std::printf("Step-size sweep (100 iterations each):\n");
  TextTable steps({"tau/theta", "RMS(u_k - u*)", "stable"});
  for (const double ratio : {0.0625, 0.125, 0.1875, 0.25}) {
    ChambolleParams p;
    p.theta = 0.25f;
    p.tau = static_cast<float>(ratio) * p.theta;
    p.iterations = 100;
    const ChambolleResult r = solve(v, p);
    const double err = rms(r.u, star.u);
    steps.add_row({TextTable::num(ratio, 4), TextTable::num(err, 5),
                   std::isfinite(err) && err < 1.0 ? "yes" : "NO"});
  }
  std::cout << steps.to_string();
  std::printf("-> larger steps converge faster; 1/4 (this discretization's "
              "bound, used by the paper's predefined tau, theta) is the "
              "practical choice; Chambolle's conservative proof used 1/8.\n\n");

  std::printf("Algorithmic ablation — energy gap to the optimum per "
              "iteration budget:\n");
  TextTable algos({"Iterations", "Chambolle (2004)", "Chambolle-Pock theta=1",
                   "Chambolle-Pock accelerated"});
  const double e_floor = e_star;
  for (const int k : {25, 50, 100, 200, 400}) {
    ChambolleParams c;
    c.iterations = k;
    ChambollePockParams plain;
    plain.iterations = k;
    plain.accelerate = false;
    ChambollePockParams accel;
    accel.iterations = k;
    accel.accelerate = true;
    algos.add_row(
        {std::to_string(k),
         TextTable::num(rof_energy(solve(v, c).u, v, c.theta) - e_floor, 6),
         TextTable::num(
             rof_energy(solve_chambolle_pock(v, plain).u, v, 0.25f) - e_floor,
             6),
         TextTable::num(
             rof_energy(solve_chambolle_pock(v, accel).u, v, 0.25f) - e_floor,
             6)});
  }
  std::cout << algos.to_string();
  std::printf("-> the 2011 primal-dual scheme (theta=1) reaches equal energy "
              "in roughly half the iterations: the natural upgrade for a "
              "next-generation accelerator (same operator structure, so the "
              "PE arrays carry over).\n");
  return 0;
}
