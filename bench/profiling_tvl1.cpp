// profiling_tvl1 — reproduces the Section I profiling observation
// (experiment E4): "approximately 90% of the execution time is spent on the
// Chambolle iterative technique" inside the full TV-L1 scheme, and software
// TV-L1 is far from real-time.
#include <cstdio>
#include <iostream>

#include "common/text_table.hpp"
#include "tvl1/tvl1.hpp"
#include "workloads/synthetic.hpp"

int main() {
  using namespace chambolle;

  std::printf("SECTION I PROFILING — SHARE OF TV-L1 TIME SPENT IN CHAMBOLLE\n\n");
  TextTable table({"Frame", "Levels", "Warps", "Inner iters", "Total (s)",
                   "Chambolle (s)", "Chambolle share"});

  double share_at_paper_settings = 0.0;
  double seconds_per_frame = 0.0;
  for (const int n : {64, 128, 192}) {
    const auto wl = workloads::translating_scene(n, n, 2.f, 1.f);
    tvl1::Tvl1Params params;
    params.pyramid_levels = 4;
    params.warps = 5;
    params.chambolle.iterations = 50;  // the paper's lightest setting

    tvl1::Tvl1Stats stats;
    (void)tvl1::compute_flow(wl.frame0, wl.frame1, params, &stats);
    table.add_row({std::to_string(n) + "x" + std::to_string(n),
                   std::to_string(stats.levels_processed),
                   std::to_string(params.warps),
                   std::to_string(stats.chambolle_inner_iterations),
                   TextTable::num(stats.total_seconds, 3),
                   TextTable::num(stats.chambolle_seconds, 3),
                   TextTable::num(100.0 * stats.chambolle_fraction(), 1) + "%"});
    if (n == 192) {
      share_at_paper_settings = stats.chambolle_fraction();
      seconds_per_frame = stats.total_seconds;
    }
  }
  std::cout << table.to_string();

  std::printf("\nPaper claims reproduced:\n");
  std::printf("  ~90%% of TV-L1 time inside Chambolle (paper: 'approximately "
              "90%%'): measured %.0f%% — %s\n",
              100.0 * share_at_paper_settings,
              share_at_paper_settings > 0.75 ? "yes" : "NO");
  const double projected_512 =
      seconds_per_frame * (512.0 * 512.0) / (192.0 * 192.0);
  std::printf("  software TV-L1 is far from real time (paper: >15 s/frame on "
              "x86 at full settings): %.2f s/frame projected at 512x512 with "
              "200-iteration solves => %.2f s\n",
              projected_512, projected_512 * 4.0);
  return share_at_paper_settings > 0.75 ? 0 : 1;
}
