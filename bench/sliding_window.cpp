// sliding_window — quantifies the sliding-window technique's overheads
// (experiment E6): redundant computation and memory replication vs merge
// depth and tile size, supporting the paper's claim that the overhead is
// "negligible ... [and] does not affect the final frame rates" (Sections
// III-B and VI), and locating the fps-optimal merge depth.
#include <cstdio>
#include <string>
#include <iostream>

#include "chambolle/tile.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/rng.hpp"
#include "common/text_table.hpp"
#include "hw/accelerator.hpp"

int main() {
  using namespace chambolle;

  std::printf("SLIDING-WINDOW OVERHEAD ANALYSIS (512x512 frame, 88x92 tiles)\n\n");

  std::printf("Replication overhead vs merge depth (halo = merged iterations):\n");
  TextTable plan_table({"Merge depth", "Tiles", "Replicated elements",
                        "Memory overhead", "fps @ 200 iters (sim model)"});
  double best_fps = 0.0;
  int best_k = 0;
  for (const int k : {1, 2, 4, 8, 12, 16, 24, 32}) {
    const TilingPlan plan = make_tiling(512, 512, 88, 92, k);
    hw::ArchConfig cfg;
    cfg.merge_iterations = k;
    const double fps =
        hw::ChambolleAccelerator(cfg).estimate_fps(512, 512, 200);
    if (fps > best_fps) {
      best_fps = fps;
      best_k = k;
    }
    plan_table.add_row(
        {std::to_string(k), std::to_string(plan.tiles.size()),
         std::to_string(plan.total_buffer_elements() - 512ull * 512ull),
         TextTable::num(100.0 * plan.redundancy(), 1) + "%",
         TextTable::num(fps, 1)});
  }
  std::cout << plan_table.to_string();
  std::printf("fps-optimal merge depth for this architecture: %d (%.1f fps)\n",
              best_k, best_fps);

  std::printf("\nRedundant computation measured in the tiled CPU solver "
              "(128x128 frame, 64 iterations):\n");
  TextTable work_table({"Tile", "Merge depth", "Passes",
                        "Computation overhead"});
  Rng rng(3);
  const Matrix<float> v = random_image(rng, 128, 128, -2.f, 2.f);
  ChambolleParams params;
  params.iterations = 64;
  for (const auto& [tile, k] :
       {std::pair{48, 2}, std::pair{48, 4}, std::pair{48, 8},
        std::pair{88, 4}, std::pair{88, 8}, std::pair{88, 16}}) {
    TiledSolverOptions opt;
    opt.tile_rows = tile;
    opt.tile_cols = tile;
    opt.merge_iterations = k;
    opt.num_threads = 1;
    TiledSolverStats stats;
    (void)solve_tiled(v, params, opt, &stats);
    work_table.add_row({std::to_string(tile) + "x" + std::to_string(tile),
                        std::to_string(k), std::to_string(stats.passes),
                        TextTable::num(100.0 * stats.overhead(), 1) + "%"});
  }
  std::cout << work_table.to_string();

  // Downscaled map of the paper's tiling on 512x512 (each cell = 16x16 px):
  // digits = how many tile BUFFERS cover the cell (overlap depth); the
  // profitable cores partition the frame exactly, so every pixel is written
  // once no matter the digit.
  {
    const TilingPlan plan = make_tiling(512, 512, 88, 92, 4);
    const int cell = 16;
    std::printf("\nBuffer-overlap map, 512x512 with 88x92 windows (halo 4):\n");
    for (int r = 0; r < 512; r += cell) {
      std::string line = "  ";
      for (int c = 0; c < 512; c += cell) {
        int covers = 0;
        for (const TileSpec& t : plan.tiles)
          if (r >= t.buf_row0 && r < t.buf_row0 + t.buf_rows &&
              c >= t.buf_col0 && c < t.buf_col0 + t.buf_cols)
            ++covers;
        line += static_cast<char>('0' + std::min(covers, 9));
      }
      std::printf("%s\n", line.c_str());
    }
  }

  const double overhead_at_paper_tile =
      make_tiling(512, 512, 88, 92, 4).redundancy();
  std::printf("\nPaper claims reproduced:\n");
  std::printf("  'slight memory overhead' at the paper's tile size "
              "(merge 4): %.1f%% — %s\n",
              100.0 * overhead_at_paper_tile,
              overhead_at_paper_tile < 0.30 ? "yes" : "NO");
  return overhead_at_paper_tile < 0.30 ? 0 : 1;
}
