// fig4_memory_org — regenerates the content of Figures 4 and 5 (the paper's
// remaining figures, 2-7, are architecture diagrams; their structure IS the
// simulator, and this bench prints the checkable facts each one encodes):
//   * Fig. 4: the row -> BRAM striping, the region assignment of the PE
//     ladder, and the 1012-address depth;
//   * Fig. 5: the operand-forwarding savings (15 reads/cycle instead of 28)
//     demonstrated live on the simulator's access counters;
//   * Figs. 6/7: the PE datapath operation counts underlying the DSP budget.
#include <cstdio>
#include <iostream>

#include "chambolle/fixed_solver.hpp"
#include "common/rng.hpp"
#include "common/text_table.hpp"
#include "hw/bram.hpp"
#include "hw/pe_array.hpp"
#include "hw/schedule.hpp"

int main() {
  using namespace chambolle;
  const hw::ArchConfig cfg;

  std::printf("FIGURE 4 — MEMORY ORGANIZATION (88x92 tile, 8 BRAMs)\n\n");
  TextTable rows({"Tile rows", "BRAM", "Addresses", "Region(s)"});
  for (int b = 0; b < cfg.num_brams; ++b) {
    std::string row_list, regions;
    for (int r = b; r < cfg.tile_rows; r += cfg.num_brams) {
      if (!row_list.empty()) row_list += ",";
      row_list += std::to_string(r);
    }
    rows.add_row({row_list, std::to_string(b),
                  std::to_string(cfg.bram_depth()),
                  "rows r live in region r/7"});
  }
  rows.render(std::cout);
  std::printf("\n  depth check: %d addresses per BRAM (paper: 1012 = 88*92/8)"
              " — %s\n",
              cfg.bram_depth(), cfg.bram_depth() == 1012 ? "yes" : "NO");
  std::printf("  region advance offset: row r -> r+%d moves +%d addresses in "
              "the same BRAM (paper: 'offset of 92')\n",
              cfg.num_brams, cfg.tile_cols);

  std::printf("\nFIGURE 5 — DATA REUSE AMONG THE PE-Ts\n\n");
  // Run one iteration of a full tile on the simulator and compare measured
  // word reads against the no-reuse operand count.
  const int R = 88, C = 92;
  Rng rng(5);
  hw::BramBank bank(cfg.tile_rows, cfg.tile_cols, cfg.num_brams);
  const Matrix<float> v = random_image(rng, R, C, -2.f, 2.f);
  const FixedState st = make_fixed_state(v);
  for (int r = 0; r < R; ++r)
    for (int c = 0; c < C; ++c)
      bank.load_fields(r, c, {st.v(r, c), 0, 0});
  hw::PeArray array(cfg);
  ChambolleParams params;
  const FixedParams fp = FixedParams::from(params);
  array.run(bank, R, C, RegionGeometry::full_frame(R, C), fp, 1);

  const auto& s = array.stats();
  const double elements = static_cast<double>(R) * C;
  std::printf("  operands needed per element (c_px, c_py, l_px, a_py): 4\n");
  std::printf("  packed-word reads measured: %llu (%.2f/element)\n",
              static_cast<unsigned long long>(s.bram_word_reads),
              static_cast<double>(s.bram_word_reads) / elements);
  std::printf("  per 7-lane cycle: 7 word reads + 1 row-above read = 15 "
              "px/py vectors, vs 28 without reuse (paper Sec. V-B) — %s\n",
              static_cast<double>(s.bram_word_reads) / elements < 1.3
                  ? "reproduced"
                  : "NO");
  std::printf("  BRAM-Term traffic: %llu reads, %llu writes (one stream per "
              "region bridge)\n",
              static_cast<unsigned long long>(s.term_bram_reads),
              static_cast<unsigned long long>(s.term_bram_writes));

  std::printf("\nFIGURES 6/7 — PE DATAPATH OPERATION BUDGET\n\n");
  TextTable ops({"Unit", "adds/subs", "const mults (LUT)", "var mults (DSP)",
                 "divides", "sqrt"});
  ops.add_row({"PE-T (Term & u)", "5", "2 (1/theta, theta)", "0", "0", "0"});
  ops.add_row({"PE-V (dual update)", "4", "3 (tau/theta)", "2 (T1^2, T2^2)",
               "2", "1 (LUT)"});
  ops.render(std::cout);
  std::printf("  -> 28 PE-V x 2 DSP mults = 56 DSPs + 6 control = 62 "
              "(Table I)\n");

  std::printf("\nLadder schedule excerpt (Figure 5's timing; R read, W write, "
              "B both):\n");
  std::cout << hw::render_timeline(hw::schedule_region(cfg, 7, 7, 92), 36);
  return cfg.bram_depth() == 1012 ? 0 : 1;
}
