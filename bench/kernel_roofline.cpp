// kernel_roofline — per-backend throughput of the fused iteration kernel.
//
// For every backend the build + CPU supports (scalar / sse2 / avx2 / neon),
// measures single-thread cells/s of the fused Chambolle iteration on a few
// frame sizes, against an embedded copy of the seed solver's two-pass loop
// (full Term frame, per-element border branches) as the pre-kernel baseline.
// Also reports the streaming-traffic model behind the fusion: the seed path
// moves 7 matrix accesses per cell per iteration (v read, px/py read+write,
// Term write then read), the fused path 5 — the rolling two-row Term window
// stays cache-resident — so the kernel's roofline ceiling sits at 28 vs
// 20 bytes/cell.  Writes BENCH_kernel_roofline.json.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "chambolle/solver.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/text_table.hpp"
#include "kernels/kernel.hpp"
#include "telemetry/bench_report.hpp"

namespace {

using namespace chambolle;

constexpr double kSeedBytesPerCell = 28.0;   // 7 matrix accesses x 4 B
constexpr double kFusedBytesPerCell = 20.0;  // 5 matrix accesses x 4 B

// The seed solver's iterate_region, verbatim: separate Term pass over a
// full-frame scratch, then the dual update pass, borders branched per cell.
float seed_div_p_at(const Matrix<float>& px, const Matrix<float>& py, int r,
                    int c, const RegionGeometry& g) {
  const int ar = g.row0 + r;
  const int ac = g.col0 + c;
  float dx;
  if (ac == 0)
    dx = px(r, c);
  else if (ac == g.frame_cols - 1)
    dx = -(c > 0 ? px(r, c - 1) : 0.f);
  else
    dx = px(r, c) - (c > 0 ? px(r, c - 1) : 0.f);
  float dy;
  if (ar == 0)
    dy = py(r, c);
  else if (ar == g.frame_rows - 1)
    dy = -(r > 0 ? py(r - 1, c) : 0.f);
  else
    dy = py(r, c) - (r > 0 ? py(r - 1, c) : 0.f);
  return dx + dy;
}

void seed_iterate_region(Matrix<float>& px, Matrix<float>& py,
                         const Matrix<float>& v, const RegionGeometry& geom,
                         const ChambolleParams& params, int iterations,
                         Matrix<float>& term_scratch) {
  const int rows = v.rows(), cols = v.cols();
  term_scratch.resize(rows, cols);
  const float inv_theta = 1.f / params.theta;
  const float step = params.step();
  for (int it = 0; it < iterations; ++it) {
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c)
        term_scratch(r, c) =
            seed_div_p_at(px, py, r, c, geom) - v(r, c) * inv_theta;
    for (int r = 0; r < rows; ++r) {
      const int ar = geom.row0 + r;
      for (int c = 0; c < cols; ++c) {
        const int ac = geom.col0 + c;
        const float t = term_scratch(r, c);
        const float term1 = (ac == geom.frame_cols - 1 || c + 1 >= cols)
                                ? 0.f
                                : term_scratch(r, c + 1) - t;
        const float term2 = (ar == geom.frame_rows - 1 || r + 1 >= rows)
                                ? 0.f
                                : term_scratch(r + 1, c) - t;
        const float grad = std::sqrt(term1 * term1 + term2 * term2);
        const float denom = 1.f + step * grad;
        px(r, c) = (px(r, c) + step * term1) / denom;
        py(r, c) = (py(r, c) + step * term2) / denom;
      }
    }
  }
}

struct Workload {
  Matrix<float> px, py, v;
  RegionGeometry geom;
  Matrix<float> scratch;
};

Workload make_workload(int rows, int cols) {
  Rng rng(42);
  Workload w;
  w.px = random_image(rng, rows, cols, -0.7f, 0.7f);
  w.py = random_image(rng, rows, cols, -0.7f, 0.7f);
  w.v = random_image(rng, rows, cols, -2.f, 2.f);
  w.geom = RegionGeometry::full_frame(rows, cols);
  return w;
}

// Repeats `step` (processing `cells_per_step` cell-iterations each call)
// until ~0.1 s has elapsed; returns Mcells/s of that window.
template <typename Step>
double measure_mcells_once(Step step, double cells_per_step) {
  Stopwatch sw;
  int reps = 0;
  do {
    step();
    ++reps;
  } while (sw.seconds() < 0.1);
  return cells_per_step * reps / sw.seconds() / 1e6;
}

// Median-of-N throughput: one warm-up call (page in buffers, resolve
// dispatch), then kRepeats independent windows reduced to min/median/max —
// run-to-run noise shows up as spread instead of biasing the number.
constexpr int kRepeats = 5;

template <typename Step>
telemetry::RepeatStats measure_mcells(Step step, double cells_per_step) {
  step();  // warm-up
  std::vector<double> samples;
  samples.reserve(kRepeats);
  for (int i = 0; i < kRepeats; ++i)
    samples.push_back(measure_mcells_once(step, cells_per_step));
  return telemetry::repeat_stats(std::move(samples));
}

std::string size_key(int rows, int cols) {
  return std::to_string(rows) + "x" + std::to_string(cols);
}

}  // namespace

int main() {
  const Stopwatch wall;
  const ChambolleParams params;
  constexpr int kItersPerStep = 10;

  std::printf(
      "FUSED KERNEL ROOFLINE (single thread, %d iterations/step, median of "
      "%d windows)\n",
      kItersPerStep, kRepeats);
  std::printf("auto-dispatch backend: %s\n\n",
              kernels::backend_name(kernels::active_backend()));

  const std::vector<std::pair<int, int>> sizes{
      {128, 128}, {316, 252}, {512, 512}};
  const std::vector<kernels::Backend> backends = kernels::available_backends();

  TextTable table({"Frame", "Backend", "Mcells/s", "min..max", "Speedup",
                   "Bytes/cell", "Streamed GB/s"});
  telemetry::BenchParams report{
      {"iterations_per_step", std::to_string(kItersPerStep)},
      {"repeats", std::to_string(kRepeats)},
      {"seed_bytes_per_cell", TextTable::num(kSeedBytesPerCell, 0)},
      {"fused_bytes_per_cell", TextTable::num(kFusedBytesPerCell, 0)},
  };
  const auto range_cell = [](const telemetry::RepeatStats& s) {
    return TextTable::num(s.min, 1) + ".." + TextTable::num(s.max, 1);
  };

  for (const auto& [rows, cols] : sizes) {
    const double cells_per_step =
        static_cast<double>(rows) * cols * kItersPerStep;

    Workload seed_w = make_workload(rows, cols);
    const telemetry::RepeatStats seed_mcells = measure_mcells(
        [&] {
          seed_iterate_region(seed_w.px, seed_w.py, seed_w.v, seed_w.geom,
                              params, kItersPerStep, seed_w.scratch);
        },
        cells_per_step);
    table.add_row(
        {size_key(rows, cols), "seed two-pass",
         TextTable::num(seed_mcells.median, 1), range_cell(seed_mcells),
         "1.00", TextTable::num(kSeedBytesPerCell, 0),
         TextTable::num(seed_mcells.median * kSeedBytesPerCell / 1e3, 2)});
    // The bare `_mcells` key stays the median, so existing consumers keep
    // reading a (now noise-robust) number; min/max ride alongside.
    report.emplace_back("seed_" + size_key(rows, cols) + "_mcells",
                        TextTable::num(seed_mcells.median, 1));
    telemetry::append_repeat_stats(
        report, "seed_" + size_key(rows, cols) + "_mcells", seed_mcells);

    for (const kernels::Backend b : backends) {
      kernels::force_backend(b);
      Workload w = make_workload(rows, cols);
      const telemetry::RepeatStats mcells = measure_mcells(
          [&] {
            iterate_region(w.px, w.py, w.v, w.geom, params, kItersPerStep,
                           w.scratch);
          },
          cells_per_step);
      const std::string name = kernels::backend_name(b);
      table.add_row(
          {size_key(rows, cols), name, TextTable::num(mcells.median, 1),
           range_cell(mcells),
           TextTable::num(mcells.median / seed_mcells.median, 2),
           TextTable::num(kFusedBytesPerCell, 0),
           TextTable::num(mcells.median * kFusedBytesPerCell / 1e3, 2)});
      report.emplace_back(name + "_" + size_key(rows, cols) + "_mcells",
                          TextTable::num(mcells.median, 1));
      report.emplace_back(name + "_" + size_key(rows, cols) + "_speedup",
                          TextTable::num(mcells.median / seed_mcells.median, 2));
      telemetry::append_repeat_stats(
          report, name + "_" + size_key(rows, cols) + "_mcells", mcells);
    }
  }
  kernels::reset_backend();

  std::cout << table.to_string();
  std::printf(
      "\nBytes/cell counts streamed matrix accesses per cell-iteration; the\n"
      "fused path keeps the two-row Term window cache-resident (the seed\n"
      "path round-trips a full Term frame).  Streamed GB/s = Mcells/s x\n"
      "bytes/cell: compare against the platform's memory bandwidth to see\n"
      "how far each backend sits from the bandwidth roof.\n");

  telemetry::write_bench_report("kernel_roofline", report, wall.milliseconds());
  return 0;
}
