// kernel_roofline — per-backend throughput of the fused iteration kernel.
//
// For every backend the build + CPU supports (scalar / sse2 / avx2 / avx512 /
// neon), measures single-thread cells/s of the fused Chambolle iteration on a
// few frame sizes — including tile-halo-narrow strips, where the masked
// AVX-512 emission scheme vectorizes the tail the other backends process
// scalar — against an embedded copy of the seed solver's two-pass loop
// (full Term frame, per-element border branches) as the pre-kernel baseline.
// The fixed-point Q24.8 kernel rows (scalar vs AVX2) ride in the same table.
// Also reports the streaming-traffic model behind the fusion: the seed path
// moves 7 matrix accesses per cell per iteration (v read, px/py read+write,
// Term write then read), the fused path 5 — the rolling two-row Term window
// stays cache-resident — so the kernel's roofline ceiling sits at 28 vs
// 20 bytes/cell.  Writes BENCH_kernel_roofline.json; the `kernel_*_ms`
// repeat stats are the medians the CI perf gate (tools/bench_diff) watches,
// and a backend the build or CPU lacks simply emits no keys (the gate
// reports those as missing, never as a failure).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "chambolle/fixed_solver.hpp"
#include "chambolle/solver.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/text_table.hpp"
#include "kernels/kernel.hpp"
#include "kernels/kernel_fixed_simd.hpp"
#include "telemetry/bench_report.hpp"

namespace {

using namespace chambolle;

constexpr double kSeedBytesPerCell = 28.0;   // 7 matrix accesses x 4 B
constexpr double kFusedBytesPerCell = 20.0;  // 5 matrix accesses x 4 B

// The seed solver's iterate_region, verbatim: separate Term pass over a
// full-frame scratch, then the dual update pass, borders branched per cell.
float seed_div_p_at(const Matrix<float>& px, const Matrix<float>& py, int r,
                    int c, const RegionGeometry& g) {
  const int ar = g.row0 + r;
  const int ac = g.col0 + c;
  float dx;
  if (ac == 0)
    dx = px(r, c);
  else if (ac == g.frame_cols - 1)
    dx = -(c > 0 ? px(r, c - 1) : 0.f);
  else
    dx = px(r, c) - (c > 0 ? px(r, c - 1) : 0.f);
  float dy;
  if (ar == 0)
    dy = py(r, c);
  else if (ar == g.frame_rows - 1)
    dy = -(r > 0 ? py(r - 1, c) : 0.f);
  else
    dy = py(r, c) - (r > 0 ? py(r - 1, c) : 0.f);
  return dx + dy;
}

void seed_iterate_region(Matrix<float>& px, Matrix<float>& py,
                         const Matrix<float>& v, const RegionGeometry& geom,
                         const ChambolleParams& params, int iterations,
                         Matrix<float>& term_scratch) {
  const int rows = v.rows(), cols = v.cols();
  term_scratch.resize(rows, cols);
  const float inv_theta = 1.f / params.theta;
  const float step = params.step();
  for (int it = 0; it < iterations; ++it) {
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c)
        term_scratch(r, c) =
            seed_div_p_at(px, py, r, c, geom) - v(r, c) * inv_theta;
    for (int r = 0; r < rows; ++r) {
      const int ar = geom.row0 + r;
      for (int c = 0; c < cols; ++c) {
        const int ac = geom.col0 + c;
        const float t = term_scratch(r, c);
        const float term1 = (ac == geom.frame_cols - 1 || c + 1 >= cols)
                                ? 0.f
                                : term_scratch(r, c + 1) - t;
        const float term2 = (ar == geom.frame_rows - 1 || r + 1 >= rows)
                                ? 0.f
                                : term_scratch(r + 1, c) - t;
        const float grad = std::sqrt(term1 * term1 + term2 * term2);
        const float denom = 1.f + step * grad;
        px(r, c) = (px(r, c) + step * term1) / denom;
        py(r, c) = (py(r, c) + step * term2) / denom;
      }
    }
  }
}

struct Workload {
  Matrix<float> px, py, v;
  RegionGeometry geom;
  Matrix<float> scratch;
};

Workload make_workload(int rows, int cols) {
  Rng rng(42);
  Workload w;
  w.px = random_image(rng, rows, cols, -0.7f, 0.7f);
  w.py = random_image(rng, rows, cols, -0.7f, 0.7f);
  w.v = random_image(rng, rows, cols, -2.f, 2.f);
  w.geom = RegionGeometry::full_frame(rows, cols);
  return w;
}

// Repeats `step` (processing `cells_per_step` cell-iterations each call)
// until ~0.1 s has elapsed; returns Mcells/s of that window.
template <typename Step>
double measure_mcells_once(Step step, double cells_per_step) {
  Stopwatch sw;
  int reps = 0;
  do {
    step();
    ++reps;
  } while (sw.seconds() < 0.1);
  return cells_per_step * reps / sw.seconds() / 1e6;
}

// Median-of-N throughput: one warm-up call (page in buffers, resolve
// dispatch), then kRepeats independent windows reduced to min/median/max —
// run-to-run noise shows up as spread instead of biasing the number.
constexpr int kRepeats = 5;

// Each window yields both a throughput sample and the equivalent
// milliseconds-per-step() sample: the mcells stats feed the human-facing
// table, the ms stats feed the perf gate (bench_diff only has a "better"
// direction for *_ms keys).
struct Measurement {
  telemetry::RepeatStats mcells;
  telemetry::RepeatStats ms;
};

template <typename Step>
Measurement measure_mcells(Step step, double cells_per_step) {
  step();  // warm-up
  std::vector<double> mc, ms;
  mc.reserve(kRepeats);
  ms.reserve(kRepeats);
  for (int i = 0; i < kRepeats; ++i) {
    const double sample = measure_mcells_once(step, cells_per_step);
    mc.push_back(sample);
    ms.push_back(cells_per_step / (sample * 1e6) * 1e3);
  }
  return {telemetry::repeat_stats(std::move(mc)),
          telemetry::repeat_stats(std::move(ms))};
}

std::string size_key(int rows, int cols) {
  return std::to_string(rows) + "x" + std::to_string(cols);
}

}  // namespace

int main() {
  const Stopwatch wall;
  const ChambolleParams params;
  constexpr int kItersPerStep = 10;

  std::printf(
      "FUSED KERNEL ROOFLINE (single thread, %d iterations/step, median of "
      "%d windows)\n",
      kItersPerStep, kRepeats);
  std::printf("auto-dispatch backend: %s\n\n",
              kernels::backend_name(kernels::active_backend()));

  // 316x252 is the paper's frame; the 9- and 17-column strips are the
  // narrow-tile shapes of the resident engine (width 2*halo+1 with merge 4
  // and 8), where per-row masked emission keeps all lanes busy while the
  // interior+scalar-tail backends degenerate toward scalar speed.
  const std::vector<std::pair<int, int>> sizes{
      {128, 128}, {316, 252}, {512, 512}, {316, 9}, {316, 17}};
  const std::vector<kernels::Backend> backends = kernels::available_backends();

  TextTable table({"Frame", "Backend", "Mcells/s", "min..max", "Speedup",
                   "Bytes/cell", "Streamed GB/s"});
  telemetry::BenchParams report{
      {"iterations_per_step", std::to_string(kItersPerStep)},
      {"repeats", std::to_string(kRepeats)},
      {"seed_bytes_per_cell", TextTable::num(kSeedBytesPerCell, 0)},
      {"fused_bytes_per_cell", TextTable::num(kFusedBytesPerCell, 0)},
  };
  const auto range_cell = [](const telemetry::RepeatStats& s) {
    return TextTable::num(s.min, 1) + ".." + TextTable::num(s.max, 1);
  };

  for (const auto& [rows, cols] : sizes) {
    const double cells_per_step =
        static_cast<double>(rows) * cols * kItersPerStep;

    Workload seed_w = make_workload(rows, cols);
    const Measurement seed_m = measure_mcells(
        [&] {
          seed_iterate_region(seed_w.px, seed_w.py, seed_w.v, seed_w.geom,
                              params, kItersPerStep, seed_w.scratch);
        },
        cells_per_step);
    const telemetry::RepeatStats& seed_mcells = seed_m.mcells;
    table.add_row(
        {size_key(rows, cols), "seed two-pass",
         TextTable::num(seed_mcells.median, 1), range_cell(seed_mcells),
         "1.00", TextTable::num(kSeedBytesPerCell, 0),
         TextTable::num(seed_mcells.median * kSeedBytesPerCell / 1e3, 2)});
    // The bare `_mcells` key stays the median, so existing consumers keep
    // reading a (now noise-robust) number; min/max ride alongside.
    report.emplace_back("seed_" + size_key(rows, cols) + "_mcells",
                        TextTable::num(seed_mcells.median, 1));
    telemetry::append_repeat_stats(
        report, "seed_" + size_key(rows, cols) + "_mcells", seed_mcells);

    for (const kernels::Backend b : backends) {
      kernels::force_backend(b);
      Workload w = make_workload(rows, cols);
      const Measurement m = measure_mcells(
          [&] {
            iterate_region(w.px, w.py, w.v, w.geom, params, kItersPerStep,
                           w.scratch);
          },
          cells_per_step);
      const telemetry::RepeatStats& mcells = m.mcells;
      const std::string name = kernels::backend_name(b);
      table.add_row(
          {size_key(rows, cols), name, TextTable::num(mcells.median, 1),
           range_cell(mcells),
           TextTable::num(mcells.median / seed_mcells.median, 2),
           TextTable::num(kFusedBytesPerCell, 0),
           TextTable::num(mcells.median * kFusedBytesPerCell / 1e3, 2)});
      report.emplace_back(name + "_" + size_key(rows, cols) + "_mcells",
                          TextTable::num(mcells.median, 1));
      report.emplace_back(name + "_" + size_key(rows, cols) + "_speedup",
                          TextTable::num(mcells.median / seed_mcells.median, 2));
      telemetry::append_repeat_stats(
          report, name + "_" + size_key(rows, cols) + "_mcells", mcells);
      // The perf-gate key: time per step() window, lower-is-better.
      telemetry::append_repeat_stats(
          report, "kernel_" + name + "_" + size_key(rows, cols) + "_ms", m.ms);
    }
  }
  kernels::reset_backend();

  // Fixed-point kernel rows (scalar loops vs the AVX2 Q24.8 kernel).  The
  // fixed path is two-pass over a full Term scratch, so it streams like the
  // seed float path: 28 bytes/cell.
  {
    const FixedParams fp = FixedParams::from(params);
    namespace kf = kernels::fixed;
    for (const auto& [rows, cols] : sizes) {
      const double cells_per_step =
          static_cast<double>(rows) * cols * kItersPerStep;
      const RegionGeometry geom = RegionGeometry::full_frame(rows, cols);
      double scalar_median = 0.0;
      // Scalar first: it is the fixed Speedup column's baseline.
      for (const kf::Backend b : {kf::Backend::kScalar, kf::Backend::kSimd}) {
        if (!kf::backend_available(b)) continue;
        kf::force_backend(b);
        Rng rng(42);
        FixedState st =
            make_fixed_state(random_image(rng, rows, cols, -2.f, 2.f));
        Matrix<std::int32_t> scratch;
        const Measurement m = measure_mcells(
            [&] { fixed_iterate_region(st, geom, fp, kItersPerStep, scratch); },
            cells_per_step);
        const std::string name = std::string("fixed_") + kf::backend_name(b);
        if (b == kf::Backend::kScalar) scalar_median = m.mcells.median;
        const double speedup =
            scalar_median > 0.0 ? m.mcells.median / scalar_median : 1.0;
        table.add_row(
            {size_key(rows, cols), name, TextTable::num(m.mcells.median, 1),
             range_cell(m.mcells), TextTable::num(speedup, 2),
             TextTable::num(kSeedBytesPerCell, 0),
             TextTable::num(m.mcells.median * kSeedBytesPerCell / 1e3, 2)});
        report.emplace_back(name + "_" + size_key(rows, cols) + "_mcells",
                            TextTable::num(m.mcells.median, 1));
        report.emplace_back(name + "_" + size_key(rows, cols) + "_speedup",
                            TextTable::num(speedup, 2));
        telemetry::append_repeat_stats(
            report, name + "_" + size_key(rows, cols) + "_mcells", m.mcells);
        telemetry::append_repeat_stats(
            report, "kernel_" + name + "_" + size_key(rows, cols) + "_ms",
            m.ms);
      }
      kf::reset_backend();
    }
  }

  std::cout << table.to_string();
  std::printf(
      "\nBytes/cell counts streamed matrix accesses per cell-iteration; the\n"
      "fused path keeps the two-row Term window cache-resident (the seed\n"
      "path round-trips a full Term frame).  Streamed GB/s = Mcells/s x\n"
      "bytes/cell: compare against the platform's memory bandwidth to see\n"
      "how far each backend sits from the bandwidth roof.  Float rows'\n"
      "Speedup is vs the seed two-pass loop; fixed_* rows' Speedup is vs\n"
      "fixed_scalar (a different arithmetic, not comparable to the float\n"
      "rows' Mcells/s).\n");

  telemetry::write_bench_report("kernel_roofline", report, wall.milliseconds());
  return 0;
}
