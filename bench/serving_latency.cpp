// serving_latency — end-to-end latency of the multi-stream flow service
// under open-loop load (src/serving/flow_service.hpp).
//
// Protocol: S Chambolle-mode sessions submit frames on a fixed arrival
// clock WITHOUT waiting for replies (open loop — queueing delay is part of
// the measurement, unlike a closed loop that self-throttles), against a
// fleet of `slots` engine slots.  Per-request latency = queue wait + solve,
// read from the replies; the run repeats several times and the bench emits
// p50/p99 order statistics per repeat, so BENCH_serving.json carries
// `p50_ms_median` / `p99_ms_median` (+ MAD) for the noise-aware perf gate
// (tools/bench_diff).
//
// A second, deliberately overloaded phase (burst arrivals, tight latency
// SLO, short queues) measures ADMISSION CONTROL instead of latency: how
// many requests the service sheds at the queue bound vs. the deadline, and
// that completed + shed accounts for every submission.  Shed rates are
// environment-dependent, so they are reported as plain params, not gated
// keys.
//
// Runs with no arguments; CHB_SERVING_SESSIONS / CHB_SERVING_REPEATS
// override the load shape for manual exploration.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/text_table.hpp"
#include "serving/flow_service.hpp"
#include "telemetry/bench_report.hpp"

namespace {

using namespace chambolle;

int env_int(const char* name, int fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::atoi(s);
}

tvl1::Tvl1Params bench_params() {
  tvl1::Tvl1Params p;
  p.chambolle.iterations = 30;
  p.tiled.tile_rows = 64;
  p.tiled.tile_cols = 64;
  p.tiled.merge_iterations = 4;
  return p;
}

double exact_quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

struct LoadResult {
  double p50 = 0.0, p99 = 0.0;
  serving::ServiceStats stats;
};

// One open-loop run: `sessions` streams, `rounds` frames each, arrivals
// every `interval_us` microseconds (0 = burst), on a fresh service.
LoadResult run_load(int sessions, int rounds, int interval_us, int slots,
                    std::size_t queue_capacity, double slo_ms,
                    std::uint64_t seed) {
  serving::FlowServiceOptions opts;
  opts.params = bench_params();
  opts.slots = slots;
  opts.queue_capacity = queue_capacity;
  opts.slo_ms = slo_ms;
  serving::FlowService service(opts);

  Rng rng(seed);
  std::vector<Matrix<float>> frames;
  for (int s = 0; s < sessions; ++s)
    frames.push_back(random_image(rng, 128, 128, -3.f, 3.f));

  std::vector<std::shared_ptr<serving::FlowService::Session>> streams;
  for (int s = 0; s < sessions; ++s) streams.push_back(service.open_session());
  std::vector<std::future<serving::Reply>> futures;
  futures.reserve(static_cast<std::size_t>(sessions) *
                  static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    for (int s = 0; s < sessions; ++s)
      futures.push_back(
          streams[static_cast<std::size_t>(s)]->submit(
              frames[static_cast<std::size_t>(s)]));
    if (interval_us > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(interval_us));
  }

  std::vector<double> latencies;
  for (auto& f : futures) {
    const serving::Reply reply = f.get();
    if (reply.ok()) latencies.push_back(reply.queue_ms + reply.solve_ms);
  }
  service.drain();
  LoadResult out;
  out.p50 = exact_quantile(latencies, 0.50);
  out.p99 = exact_quantile(latencies, 0.99);
  out.stats = service.stats();
  return out;
}

}  // namespace

int main() {
  const int sessions = env_int("CHB_SERVING_SESSIONS", 6);
  const int repeats = env_int("CHB_SERVING_REPEATS", 5);
  const int rounds = 20;

  Stopwatch wall;
  TextTable table(
      {"phase", "sessions", "completed", "shed", "p50 ms", "p99 ms"});

  // Phase 1 (gated): sustainable open-loop load, latency quantiles.
  std::vector<double> p50s, p99s;
  serving::ServiceStats last{};
  for (int r = 0; r < repeats; ++r) {
    const LoadResult res =
        run_load(sessions, rounds, /*interval_us=*/2000, /*slots=*/2,
                 /*queue_capacity=*/64, /*slo_ms=*/0.0,
                 /*seed=*/1000 + static_cast<std::uint64_t>(r));
    p50s.push_back(res.p50);
    p99s.push_back(res.p99);
    last = res.stats;
    table.add_row({"open-loop", std::to_string(sessions),
                   std::to_string(res.stats.completed),
                   std::to_string(res.stats.shed_queue_full +
                                  res.stats.shed_deadline),
                   TextTable::num(res.p50, 3), TextTable::num(res.p99, 3)});
  }

  // Phase 2 (reported, not gated): burst overload against a tight SLO and
  // short queues — admission control must shed, and the books must balance.
  const LoadResult overload =
      run_load(sessions, rounds, /*interval_us=*/0, /*slots=*/1,
               /*queue_capacity=*/4, /*slo_ms=*/10.0, /*seed=*/2000);
  const std::uint64_t shed =
      overload.stats.shed_queue_full + overload.stats.shed_deadline;
  table.add_row({"overload", std::to_string(sessions),
                 std::to_string(overload.stats.completed),
                 std::to_string(shed), TextTable::num(overload.p50, 3),
                 TextTable::num(overload.p99, 3)});
  table.render(std::cout);

  const std::uint64_t submitted =
      static_cast<std::uint64_t>(sessions) * static_cast<std::uint64_t>(rounds);
  if (overload.stats.completed + shed != submitted) {
    std::fprintf(stderr,
                 "serving_latency: admission books don't balance: "
                 "%llu completed + %llu shed != %llu submitted\n",
                 static_cast<unsigned long long>(overload.stats.completed),
                 static_cast<unsigned long long>(shed),
                 static_cast<unsigned long long>(submitted));
    return 1;
  }

  telemetry::BenchParams report;
  report.emplace_back("sessions", std::to_string(sessions));
  report.emplace_back("rounds", std::to_string(rounds));
  report.emplace_back("repeats", std::to_string(repeats));
  telemetry::append_repeat_stats(report, "p50_ms",
                                 telemetry::repeat_stats(p50s));
  telemetry::append_repeat_stats(report, "p99_ms",
                                 telemetry::repeat_stats(p99s));
  report.emplace_back("openloop_completed", std::to_string(last.completed));
  report.emplace_back("overload_completed",
                      std::to_string(overload.stats.completed));
  report.emplace_back("overload_shed_queue_full",
                      std::to_string(overload.stats.shed_queue_full));
  report.emplace_back("overload_shed_deadline",
                      std::to_string(overload.stats.shed_deadline));
  report.emplace_back("overload_shed", std::to_string(shed));
  telemetry::write_bench_report("serving", report, wall.milliseconds());
  return 0;
}
