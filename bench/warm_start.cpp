// warm_start — temporal-coherence ablation: how many Chambolle iterations a
// VIDEO pipeline needs per frame when the accelerator's dual state is
// re-seeded from the previous frame vs. re-initialized at zero (Algorithm 1
// initializes p at 0; nothing in the architecture forbids seeding the BRAMs
// with the previous frame's p instead — the initial load port is already
// there).  An optimization study beyond the paper.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "chambolle/solver.hpp"
#include "common/text_table.hpp"
#include "hw/accelerator.hpp"
#include "workloads/sequence.hpp"

namespace {

using namespace chambolle;

double rms_to(const Matrix<float>& a, const Matrix<float>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace

int main() {
  const int n = 64;

  // A slowly drifting support field, as successive TV-L1 warps produce it:
  // v_t = base + small temporal perturbation.
  workloads::SequenceParams sp;
  sp.frames = 6;
  sp.rate_x = 0.4f;
  sp.rate_y = 0.2f;
  const workloads::VideoSequence seq = workloads::make_sequence(n, n, sp);

  hw::ArchConfig cfg;
  cfg.tile_rows = 48;
  cfg.tile_cols = 48;
  cfg.merge_iterations = 4;
  hw::ChambolleAccelerator accel(cfg);

  std::printf("WARM-START ABLATION (drifting support fields, %dx%d)\n", n, n);
  std::printf("RMS distance to the converged solution after K iterations,\n");
  std::printf("cold (p=0 each frame) vs warm (p seeded from previous "
              "frame):\n\n");

  TextTable table({"K iters", "cold RMS", "warm RMS", "warm advantage"});
  for (const int k : {4, 8, 16, 32}) {
    double cold_rms = 0.0, warm_rms = 0.0;
    FlowField prev_dual_u1, prev_dual_u2;
    bool have_prev = false;
    int measured = 0;
    for (std::size_t f = 0; f + 1 < seq.frames.size(); ++f) {
      // Support field derived from the frame pair (scaled intensities).
      FlowField v(n, n);
      for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c) {
          v.u1(r, c) = (seq.frames[f](r, c) - 128.f) / 64.f;
          v.u2(r, c) = (seq.frames[f + 1](r, c) - 128.f) / 64.f;
        }
      ChambolleParams params;
      params.iterations = k;

      // Converged target for this frame.
      ChambolleParams deep;
      deep.iterations = 400;
      const FlowField u_star = solve_flow(v, deep);

      const auto cold = accel.solve(v, params);

      hw::AcceleratorInitialDual init;
      if (have_prev) {
        init.u1_px = &prev_dual_u1.u1;
        init.u1_py = &prev_dual_u1.u2;
        init.u2_px = &prev_dual_u2.u1;
        init.u2_py = &prev_dual_u2.u2;
      }
      const auto warm = accel.solve(v, params, init);

      if (have_prev) {
        cold_rms += rms_to(cold.u.u1, u_star.u1);
        warm_rms += rms_to(warm.u.u1, u_star.u1);
        ++measured;
      }
      prev_dual_u1 = warm.dual_u1;
      prev_dual_u2 = warm.dual_u2;
      have_prev = true;
    }
    cold_rms /= measured;
    warm_rms /= measured;
    table.add_row({std::to_string(k), TextTable::num(cold_rms, 5),
                   TextTable::num(warm_rms, 5),
                   TextTable::num(cold_rms / std::max(warm_rms, 1e-9), 2) +
                       "x"});
  }
  table.render(std::cout);
  std::printf("\n-> seeding the BRAM state from the previous frame reaches "
              "the same quality with fewer iterations — free frame rate for "
              "video workloads.\n");
  return 0;
}
