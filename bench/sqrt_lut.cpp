// sqrt_lut — experiment E5: precision and throughput of the paper's
// 256-entry LUT square root (Section V-C) against the iterative
// non-restoring alternative and the libm reference.
//
// Prints the precision table first, then runs google-benchmark throughput
// measurements.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "common/text_table.hpp"
#include "fixedpoint/lut_sqrt.hpp"
#include "fixedpoint/nonrestoring_sqrt.hpp"
#include "fixedpoint/qformat.hpp"

namespace {

using namespace chambolle;

void print_precision_report() {
  std::printf("SECTION V-C — LUT SQUARE ROOT PRECISION\n");
  std::printf("(input Q24.8, 256-entry table, odd-aligned 8-bit window)\n\n");

  TextTable table({"Input range", "Samples", "Within 1% (LUT)",
                   "Mean rel err (LUT)", "Mean rel err (non-restoring)"});
  Rng rng(4242);
  struct Band {
    const char* name;
    double lo_log2, hi_log2;
  };
  const Band bands[] = {{"[2^-8, 1)", -8, 0},
                        {"[1, 2^8)", 0, 8},
                        {"[2^8, 2^16)", 8, 16},
                        {"[2^16, 2^23)", 16, 23},
                        {"full log-uniform", -8, 23}};
  double full_within = 0.0;
  for (const Band& b : bands) {
    const int samples = 50000;
    int within = 0, counted = 0;
    double lut_err = 0.0, nr_err = 0.0;
    for (int i = 0; i < samples; ++i) {
      const double real = std::pow(
          2.0, rng.uniform(static_cast<float>(b.lo_log2),
                           static_cast<float>(b.hi_log2)));
      const std::int32_t raw = fx::to_fixed(real);
      if (raw <= 0) continue;
      const double exact = std::sqrt(static_cast<double>(raw) / fx::kOne);
      const double lut = static_cast<double>(fx::lut_sqrt(raw)) / fx::kOne;
      const double nr =
          static_cast<double>(fx::nonrestoring_sqrt_q(raw)) / fx::kOne;
      ++counted;
      const double rel = std::abs(lut - exact) / exact;
      if (rel < 0.01) ++within;
      lut_err += rel;
      nr_err += std::abs(nr - exact) / exact;
    }
    const double pct = 100.0 * within / counted;
    if (b.lo_log2 == -8 && b.hi_log2 == 23) full_within = pct;
    table.add_row({b.name, std::to_string(counted),
                   TextTable::num(pct, 1) + "%",
                   TextTable::num(100.0 * lut_err / counted, 3) + "%",
                   TextTable::num(100.0 * nr_err / counted, 4) + "%"});
  }
  std::cout << table.to_string();
  std::printf("\nPaper claim — 'error below 1%% in more than 90%% of the "
              "samples': %.1f%% — %s\n\n",
              full_within, full_within > 90.0 ? "yes" : "NO");
}

std::vector<std::int32_t> bench_inputs() {
  Rng rng(7);
  std::vector<std::int32_t> v(4096);
  for (auto& x : v)
    x = static_cast<std::int32_t>(rng.next_u64() & 0x3FFFFFFF);
  return v;
}

void BM_LutSqrt(benchmark::State& state) {
  const auto inputs = bench_inputs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx::lut_sqrt(inputs[i++ & 4095]));
  }
}
BENCHMARK(BM_LutSqrt);

void BM_NonRestoringSqrt(benchmark::State& state) {
  const auto inputs = bench_inputs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx::nonrestoring_sqrt_q(inputs[i++ & 4095]));
  }
}
BENCHMARK(BM_NonRestoringSqrt);

void BM_LibmSqrtf(benchmark::State& state) {
  const auto inputs = bench_inputs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(std::sqrt(fx::to_float(inputs[i++ & 4095])));
  }
}
BENCHMARK(BM_LibmSqrtf);

}  // namespace

int main(int argc, char** argv) {
  print_precision_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
