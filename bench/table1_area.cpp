// table1_area — regenerates Table I: "Area usage on a XC5VLX110T FPGA".
//
// BRAM and DSP counts are structural consequences of the architecture; FF and
// LUT counts come from the calibrated per-primitive model (see DESIGN.md,
// experiment E1).  The table prints model vs paper with deviations.
#include <cstdio>
#include <iostream>

#include "common/text_table.hpp"
#include "hw/resource_model.hpp"

int main() {
  using namespace chambolle;
  const hw::ArchConfig cfg;
  const hw::ResourceReport model = hw::estimate_resources(cfg);
  const hw::PaperTable1 paper;
  const hw::Virtex5Spec device;

  std::printf("TABLE I — AREA USAGE ON A XC5VLX110T FPGA\n");
  std::printf("(model: structural counts for BRAM/DSP, calibrated estimates "
              "for FF/LUT)\n\n");

  TextTable table({"Resource", "Model", "Paper", "Deviation", "Total",
                   "Model %", "Paper %"});
  const auto row = [&](const char* name, int model_v, int paper_v, int total,
                       double paper_pct) {
    const double dev =
        100.0 * (static_cast<double>(model_v) - paper_v) / paper_v;
    table.add_row({name, std::to_string(model_v), std::to_string(paper_v),
                   TextTable::num(dev, 1) + "%", std::to_string(total),
                   TextTable::num(100.0 * model_v / total, 1) + "%",
                   TextTable::num(paper_pct, 1) + "%"});
  };
  row("FlipFlops", model.flipflops, paper.flipflops, device.flipflops, 33.0);
  row("LUTs", model.luts, paper.luts, device.luts, 47.0);
  row("BRAMs", model.brams, paper.brams, device.brams, 28.0);
  row("DSPs", model.dsps, paper.dsps, device.dsps, 96.8);
  std::cout << table.to_string();

  std::printf("\nModule inventory:\n");
  TextTable modules({"Module", "Instances", "FF", "LUT", "BRAM", "DSP"});
  for (const auto& m : model.modules)
    modules.add_row({m.name, std::to_string(m.instances),
                     std::to_string(m.instances * m.flipflops_each),
                     std::to_string(m.instances * m.luts_each),
                     std::to_string(m.instances * m.brams_each),
                     std::to_string(m.instances * m.dsps_each)});
  std::cout << modules.to_string();

  std::printf("\nPaper claims reproduced:\n");
  std::printf("  36 BRAMs (4 arrays x 9)               : %s\n",
              model.brams == 36 ? "yes" : "NO");
  std::printf("  62 DSPs (28 PE-V x 2 + 6 control)     : %s\n",
              model.dsps == 62 ? "yes" : "NO");
  std::printf("  less than half the device slice logic : %s\n",
              model.lut_pct(device) < 50.0 && model.flipflop_pct(device) < 50.0
                  ? "yes"
                  : "NO");
  return 0;
}
