// device_projection — full-pipeline on-device timing: TV-L1 (pyramid + warps
// + thresholding on the host, Chambolle on the accelerator) with the
// simulator's measured cycle counts, projected to the paper's 221 MHz clock.
// The system-level number a Table II reader ultimately wants: end-to-end
// flow fields per second, not just inner-solver throughput.
#include <cstdio>
#include <iostream>

#include "common/text_table.hpp"
#include "tvl1/accel_backend.hpp"
#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

int main() {
  using namespace chambolle;

  std::printf("ON-DEVICE PROJECTION OF THE FULL TV-L1 PIPELINE\n");
  std::printf("(host: pyramid/warp/threshold; device: all Chambolle solves; "
              "cycles measured by the simulator at 221 MHz)\n\n");

  TextTable table({"Frame", "Levels x warps x iters", "Device cycles",
                   "Device ms/frame", "Device-bound fps", "AEE (px)"});

  hw::ArchConfig cfg;  // the paper's configuration
  for (const int n : {96, 128, 192}) {
    const auto wl = workloads::translating_scene(n, n, 2.f, 1.f,
                                                 static_cast<std::uint64_t>(n));
    tvl1::Tvl1Params params;
    params.pyramid_levels = 4;
    params.warps = 5;
    params.chambolle.iterations = 40;

    hw::ChambolleAccelerator accel(cfg);
    tvl1::AccelTvl1Stats stats;
    const FlowField u = tvl1::compute_flow_accelerated(wl.frame0, wl.frame1,
                                                       params, accel, &stats);
    const double ms = 1e3 * stats.device_seconds(cfg.clock_mhz);
    table.add_row(
        {std::to_string(n) + "x" + std::to_string(n),
         std::to_string(params.pyramid_levels) + " x " +
             std::to_string(params.warps) + " x " +
             std::to_string(params.chambolle.iterations),
         std::to_string(stats.device_cycles), TextTable::num(ms, 2),
         TextTable::num(1e3 / ms, 1),
         TextTable::num(
             workloads::interior_endpoint_error(u, wl.ground_truth, 8), 3)});
  }
  table.render(std::cout);
  std::printf("\n-> with ~90%% of TV-L1 inside Chambolle (profiling bench), "
              "device-bound fps approximates whole-pipeline fps when the "
              "host overlaps its 10%%.\n");
  return 0;
}
