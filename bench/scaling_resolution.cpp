// scaling_resolution — experiment E7: frame rate of the accelerator model
// across resolutions and iteration counts ("the proposed hardware proves to
// scale very well with the frame size", Section VI), including every
// resolution that appears in Table II.
#include <cstdio>
#include <iostream>

#include "common/text_table.hpp"
#include "hw/accelerator.hpp"

int main() {
  using namespace chambolle;
  hw::ChambolleAccelerator accel{hw::ArchConfig{}};

  std::printf("ACCELERATOR FRAME RATE vs RESOLUTION (measured cycle model, "
              "221 MHz)\n\n");
  struct Res {
    int width, height;
  };
  const Res resolutions[] = {{128, 128}, {256, 256}, {512, 512},
                             {640, 480}, {768, 576}, {1024, 768},
                             {1280, 1024}};

  TextTable table({"Resolution", "fps @ 50 it", "fps @ 100 it",
                   "fps @ 200 it", "cycles/pixel/iter @ 200"});
  for (const Res& r : resolutions) {
    const double f50 = accel.estimate_fps(r.height, r.width, 50);
    const double f100 = accel.estimate_fps(r.height, r.width, 100);
    const double f200 = accel.estimate_fps(r.height, r.width, 200);
    const double cpp =
        static_cast<double>(accel.estimate_frame_cycles(r.height, r.width, 200)) /
        (static_cast<double>(r.width) * r.height * 200.0);
    table.add_row({std::to_string(r.width) + "x" + std::to_string(r.height),
                   TextTable::num(f50, 1), TextTable::num(f100, 1),
                   TextTable::num(f200, 1), TextTable::num(cpp, 4)});
  }
  std::cout << table.to_string();

  // Scaling shape: cycles/pixel shrinks as frames grow (fixed halo and fill
  // overheads amortize), the effect implicit in Table II where 1024x768 sits
  // closer to its ideal throughput bound than 512x512 does.
  const double cpp_256 =
      static_cast<double>(accel.estimate_frame_cycles(256, 256, 200)) /
      (256.0 * 256.0 * 200.0);
  const double cpp_1024 =
      static_cast<double>(accel.estimate_frame_cycles(768, 1024, 200)) /
      (1024.0 * 768.0 * 200.0);
  std::printf("\nShape checks:\n");
  std::printf("  per-pixel cost shrinks with frame size: %s (%.4f -> %.4f "
              "cycles/pixel/iter)\n",
              cpp_1024 < cpp_256 ? "yes" : "NO", cpp_256, cpp_1024);
  const double ratio_flat =
      accel.estimate_fps(512, 512, 200) / accel.estimate_fps(768, 1024, 200);
  const double ratio_pyr = accel.estimate_pyramid_fps(512, 512, 200) /
                           accel.estimate_pyramid_fps(768, 1024, 200);
  std::printf("  512x512 vs 1024x768 fps ratio: %.2f flat, %.2f pyramid "
              "(paper: 99.1/38.1 = 2.60; pixel ratio alone would be 3.00)\n",
              ratio_flat, ratio_pyr);
  std::printf("  real-time class rates at 1024x768 with 50-iteration solves: "
              "%.1f fps\n",
              accel.estimate_fps(768, 1024, 50));
  return cpp_1024 < cpp_256 && ratio_pyr < 3.0 ? 0 : 1;
}
