// scaling_resolution — experiment E7: frame rate of the accelerator model
// across resolutions and iteration counts ("the proposed hardware proves to
// scale very well with the frame size", Section VI), including every
// resolution that appears in Table II.
//
// Extended with experiment E12: passes-to-quality of the software engines
// across resolutions.  The resident engine propagates information one halo
// strip per pass, so the pass count to drain GLOBAL low-frequency error
// grows with frame size; the multi-level coarse-grid correction
// (run_multilevel) moves that error in one coarse solve, keeping the pass
// count roughly flat — the sublinear-scaling claim this bench measures.
//
// Protocol (time-to-quality): every engine runs chunked (32 passes per
// chunk) on the same stiff smooth workload, probing after each chunk with
// one pure fine pass; an engine stops when the probe's max |delta u| falls
// under the probe tolerance.  The multilevel row's headline number is the
// first checkpoint whose ROF energy is at or below the adaptive baseline's
// FINAL energy — "passes to reach the baseline's quality" — which charges
// any correction artifacts against the multilevel engine honestly instead
// of trusting its own stopping point.
//
// The default run covers 960x540 and 1920x1080 (CI-sized); setting
// CHB_SCALING_LARGE=1 in the environment adds 3840x2160 and 7680x4320
// (minutes of runtime at one thread, for the full E12 table).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "chambolle/energy.hpp"
#include "chambolle/resident_tiled.hpp"
#include "common/stopwatch.hpp"
#include "common/text_table.hpp"
#include "hw/accelerator.hpp"
#include "telemetry/bench_report.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace chambolle;

float max_du(const Matrix<float>& a, const Matrix<float>& b) {
  float best = 0.f;
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  for (std::size_t i = 0; i < a.size(); ++i)
    best = std::max(best, std::abs(pa[i] - pb[i]));
  return best;
}

// Stiff smooth content: the band-limited texture plus one frame-spanning
// mode, so part of the error must cross the whole frame to drain.  theta=50
// makes the problem stiff enough that the low-frequency tail dominates.
Image make_workload(int rows, int cols) {
  Image v = workloads::smooth_texture(rows, cols, 42);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      v(r, c) += 40.f * std::sin(6.28318f * r / rows) *
                 std::sin(6.28318f * c / cols);
  return v;
}

constexpr int kChunk = 32;        // fine passes between probes
constexpr float kProbeTol = 5e-3f;  // probe max|du| stop threshold
constexpr int kPassCap = 4096;    // safety cap

enum class Mode { kFixed, kAdaptive, kMultilevel };

struct TrajPoint {
  int passes;
  double energy;
};

struct RunOutcome {
  int stop_passes = 0;            // probe-based stop
  double final_energy = 0.0;
  double wall_seconds = 0.0;
  double mcells_per_s = 0.0;      // cell-iterations per wall second
  std::uint64_t coarse_solves = 0;
  std::vector<TrajPoint> traj;    // energy at each probe checkpoint
};

RunOutcome run_engine(Mode mode, const Image& v, const ChambolleParams& params,
                      const TiledSolverOptions& opt) {
  RunOutcome out;
  const Stopwatch wall;
  ResidentTiledEngine engine(v, params, opt);
  int passes = 0;
  while (passes < kPassCap) {
    switch (mode) {
      case Mode::kFixed:
        engine.run(kChunk * opt.merge_iterations);
        break;
      case Mode::kAdaptive: {
        ResidentAdaptiveOptions ao;
        ao.tolerance = 1e-30f;  // probe decides the stop, not retirement
        ao.patience = 1;
        ao.max_passes = kChunk;
        (void)engine.run_adaptive(ao);
        break;
      }
      case Mode::kMultilevel: {
        ResidentMultilevelOptions ml;
        ml.adaptive.tolerance = 1e-30f;
        ml.adaptive.patience = 1;
        ml.adaptive.max_passes = kChunk;
        ml.multilevel.period = 2;
        ml.multilevel.levels = 1;
        out.coarse_solves += engine.run_multilevel(ml).coarse_solves;
        break;
      }
    }
    passes += kChunk;
    // Probe: one pure fine pass; its primal movement is the convergence
    // gauge every mode shares (correction-free, so multilevel can't game it).
    const Matrix<float> u0 = engine.result().u;
    engine.run(opt.merge_iterations);
    ++passes;
    const Matrix<float> u1 = engine.result().u;
    out.traj.push_back({passes, rof_energy(u1, v, params.theta)});
    if (max_du(u1, u0) < kProbeTol) break;
  }
  out.wall_seconds = wall.seconds();
  out.stop_passes = passes;
  out.final_energy = out.traj.empty() ? 0.0 : out.traj.back().energy;
  out.mcells_per_s = static_cast<double>(passes) * opt.merge_iterations *
                     v.rows() * v.cols() / out.wall_seconds / 1e6;
  return out;
}

// First checkpoint at or below the target energy (lower = better); falls
// back to the last checkpoint when the trajectory never reaches it.
int crossing_passes(const RunOutcome& run, double target_energy) {
  for (const TrajPoint& p : run.traj)
    if (p.energy <= target_energy) return p.passes;
  return run.stop_passes;
}

}  // namespace

int main() {
  using namespace chambolle;
  const Stopwatch wall;
  telemetry::BenchParams report;
  hw::ChambolleAccelerator accel{hw::ArchConfig{}};

  std::printf("ACCELERATOR FRAME RATE vs RESOLUTION (measured cycle model, "
              "221 MHz)\n\n");
  struct Res {
    int width, height;
  };
  const Res resolutions[] = {{128, 128}, {256, 256}, {512, 512},
                             {640, 480}, {768, 576}, {1024, 768},
                             {1280, 1024}};

  TextTable table({"Resolution", "fps @ 50 it", "fps @ 100 it",
                   "fps @ 200 it", "cycles/pixel/iter @ 200"});
  for (const Res& r : resolutions) {
    const double f50 = accel.estimate_fps(r.height, r.width, 50);
    const double f100 = accel.estimate_fps(r.height, r.width, 100);
    const double f200 = accel.estimate_fps(r.height, r.width, 200);
    const double cpp =
        static_cast<double>(accel.estimate_frame_cycles(r.height, r.width, 200)) /
        (static_cast<double>(r.width) * r.height * 200.0);
    table.add_row({std::to_string(r.width) + "x" + std::to_string(r.height),
                   TextTable::num(f50, 1), TextTable::num(f100, 1),
                   TextTable::num(f200, 1), TextTable::num(cpp, 4)});
  }
  std::cout << table.to_string();

  // Scaling shape: cycles/pixel shrinks as frames grow (fixed halo and fill
  // overheads amortize), the effect implicit in Table II where 1024x768 sits
  // closer to its ideal throughput bound than 512x512 does.
  const double cpp_256 =
      static_cast<double>(accel.estimate_frame_cycles(256, 256, 200)) /
      (256.0 * 256.0 * 200.0);
  const double cpp_1024 =
      static_cast<double>(accel.estimate_frame_cycles(768, 1024, 200)) /
      (1024.0 * 768.0 * 200.0);
  std::printf("\nShape checks:\n");
  std::printf("  per-pixel cost shrinks with frame size: %s (%.4f -> %.4f "
              "cycles/pixel/iter)\n",
              cpp_1024 < cpp_256 ? "yes" : "NO", cpp_256, cpp_1024);
  const double ratio_flat =
      accel.estimate_fps(512, 512, 200) / accel.estimate_fps(768, 1024, 200);
  const double ratio_pyr = accel.estimate_pyramid_fps(512, 512, 200) /
                           accel.estimate_pyramid_fps(768, 1024, 200);
  std::printf("  512x512 vs 1024x768 fps ratio: %.2f flat, %.2f pyramid "
              "(paper: 99.1/38.1 = 2.60; pixel ratio alone would be 3.00)\n",
              ratio_flat, ratio_pyr);
  std::printf("  real-time class rates at 1024x768 with 50-iteration solves: "
              "%.1f fps\n",
              accel.estimate_fps(768, 1024, 50));
  const bool accel_ok = cpp_1024 < cpp_256 && ratio_pyr < 3.0;

  // ------------------------------------------------------------------
  // E12: engine passes-to-quality vs resolution.
  // ------------------------------------------------------------------
  const bool large = [] {
    const char* e = std::getenv("CHB_SCALING_LARGE");
    return e != nullptr && e[0] != '\0' && e[0] != '0';
  }();
  std::vector<Res> engine_sizes = {{960, 540}, {1920, 1080}};
  if (large) {
    engine_sizes.push_back({3840, 2160});
    engine_sizes.push_back({7680, 4320});
  }

  ChambolleParams params;
  params.theta = 50.f;
  params.tau = 0.25f * params.theta;
  params.iterations = kChunk * 4;

  TiledSolverOptions opt;
  opt.tile_rows = 88;
  opt.tile_cols = 92;
  opt.merge_iterations = 4;

  std::printf("\n\nENGINE PASSES-TO-QUALITY vs RESOLUTION (theta=%.0f, "
              "probe tol %.0e, multilevel period 2 / 1 coarse level)\n\n",
              params.theta, kProbeTol);
  TextTable etable({"Resolution", "Engine", "Passes", "To baseline quality",
                    "Speedup", "Coarse solves", "Mcells/s", "Wall s"});
  bool engine_ok = true;
  for (const Res& r : engine_sizes) {
    const Image v = make_workload(r.height, r.width);
    const std::string size_key =
        std::to_string(r.width) + "x" + std::to_string(r.height);

    const RunOutcome fixed = run_engine(Mode::kFixed, v, params, opt);
    const RunOutcome adaptive = run_engine(Mode::kAdaptive, v, params, opt);
    const RunOutcome ml = run_engine(Mode::kMultilevel, v, params, opt);

    // The headline: passes the multilevel engine needs to reach the
    // adaptive baseline's final energy, vs the passes the baseline took.
    const int cross = crossing_passes(ml, adaptive.final_energy);
    const double speedup = static_cast<double>(adaptive.stop_passes) / cross;
    engine_ok = engine_ok && cross <= adaptive.stop_passes;

    etable.add_row({size_key, "resident", std::to_string(fixed.stop_passes),
                    "-", "-", "-", TextTable::num(fixed.mcells_per_s, 1),
                    TextTable::num(fixed.wall_seconds, 1)});
    etable.add_row({size_key, "resident-adaptive",
                    std::to_string(adaptive.stop_passes), "-", "1.00", "-",
                    TextTable::num(adaptive.mcells_per_s, 1),
                    TextTable::num(adaptive.wall_seconds, 1)});
    etable.add_row({size_key, "multilevel", std::to_string(ml.stop_passes),
                    std::to_string(cross), TextTable::num(speedup, 2),
                    std::to_string(ml.coarse_solves),
                    TextTable::num(ml.mcells_per_s, 1),
                    TextTable::num(ml.wall_seconds, 1)});

    report.emplace_back("resident_" + size_key + "_passes",
                        std::to_string(fixed.stop_passes));
    report.emplace_back("adaptive_" + size_key + "_passes",
                        std::to_string(adaptive.stop_passes));
    report.emplace_back("multilevel_" + size_key + "_passes",
                        std::to_string(ml.stop_passes));
    report.emplace_back("multilevel_" + size_key + "_passes_to_tolerance",
                        std::to_string(cross));
    report.emplace_back("multilevel_" + size_key + "_speedup",
                        TextTable::num(speedup, 2));
    report.emplace_back("multilevel_" + size_key + "_coarse_solves",
                        std::to_string(ml.coarse_solves));
    report.emplace_back("resident_" + size_key + "_mcells",
                        TextTable::num(fixed.mcells_per_s, 1));
    report.emplace_back("adaptive_" + size_key + "_mcells",
                        TextTable::num(adaptive.mcells_per_s, 1));
    report.emplace_back("multilevel_" + size_key + "_mcells",
                        TextTable::num(ml.mcells_per_s, 1));
  }
  std::cout << etable.to_string();
  std::printf(
      "\n'To baseline quality' is the first multilevel checkpoint whose ROF\n"
      "energy is at or below the adaptive row's final energy; Speedup is\n"
      "adaptive passes over that crossing point.  Sublinear scaling shows as\n"
      "a roughly flat multilevel pass count while the baseline rows grow\n"
      "with resolution.%s\n",
      large ? "" : "  (Set CHB_SCALING_LARGE=1 for 4K and 8K rows.)");

  telemetry::write_bench_report("scaling_resolution", report,
                                wall.milliseconds());
  return accel_ok && engine_ok ? 0 : 1;
}
