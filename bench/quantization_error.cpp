// quantization_error — end-to-end accuracy of the fixed-point datapath
// (Section V-B formats + Section V-C LUT sqrt) against the float reference:
// error vs iteration count, error vs input magnitude, and the contribution
// of the LUT sqrt in isolation (by contrast with a fixed-point solver that
// is identical except for an exact square root).  Also reports fixed-point
// iteration throughput, scalar loops vs the vectorized Q24.8 kernel (which
// is bit-identical, so the speedup is free); writes
// BENCH_quantization_error.json with the fixed_* throughput keys.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "chambolle/fixed_solver.hpp"
#include "chambolle/solver.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/text_table.hpp"
#include "kernels/kernel_fixed_simd.hpp"
#include "telemetry/bench_report.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace chambolle;

double rms(const Matrix<float>& a, const Matrix<float>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace

namespace {

// Mcells/s of fixed_iterate_region under the given fixed backend on a
// rows x cols frame: repeat ~0.15 s windows, keep the median of five.
double fixed_mcells(chambolle::kernels::fixed::Backend b, int rows, int cols) {
  using namespace chambolle;
  kernels::fixed::force_backend(b);
  Rng rng(33);
  FixedState st = make_fixed_state(random_image(rng, rows, cols, -2.f, 2.f));
  const RegionGeometry geom = RegionGeometry::full_frame(rows, cols);
  ChambolleParams p;
  const FixedParams fp = FixedParams::from(p);
  constexpr int kIters = 10;
  Matrix<std::int32_t> scratch;
  fixed_iterate_region(st, geom, fp, kIters, scratch);  // warm-up
  std::vector<double> samples;
  for (int rep = 0; rep < 5; ++rep) {
    Stopwatch sw;
    int steps = 0;
    do {
      fixed_iterate_region(st, geom, fp, kIters, scratch);
      ++steps;
    } while (sw.seconds() < 0.15);
    samples.push_back(static_cast<double>(rows) * cols * kIters * steps /
                      sw.seconds() / 1e6);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main() {
  using namespace chambolle;
  const Stopwatch wall;
  std::printf("FIXED-POINT DATAPATH ACCURACY vs FLOAT REFERENCE\n");
  std::printf("(v: Q5.8 / 13 bits, px,py: Q1.8 / 9 bits, LUT sqrt)\n\n");

  Rng rng(11);
  const int n = 64;
  const Matrix<float> v = random_image(rng, n, n, -3.f, 3.f);

  std::printf("Error vs iteration count (64x64 random support field):\n");
  TextTable iter_table({"Iterations", "RMS(u) fixed vs float",
                        "max|u| fixed vs float", "RMS(px)"});
  for (const int iters : {1, 5, 20, 50, 100, 200}) {
    ChambolleParams params;
    params.iterations = iters;
    const ChambolleResult fx = solve_fixed(v, params);
    const ChambolleResult fl = solve(v, params);
    iter_table.add_row({std::to_string(iters),
                        TextTable::num(rms(fx.u, fl.u), 4),
                        TextTable::num(max_abs_diff(fx.u, fl.u), 4),
                        TextTable::num(rms(fx.p.px, fl.p.px), 4)});
  }
  std::cout << iter_table.to_string();
  std::printf("-> the error saturates with iterations (the projection keeps "
              "the dual bounded), staying in the few-LSB class of the Q*.8 "
              "formats.\n\n");

  std::printf("Error vs input magnitude (50 iterations):\n");
  TextTable mag_table({"Input range", "RMS(u) fixed vs float",
                       "relative to range"});
  for (const float range : {0.5f, 1.f, 2.f, 4.f, 8.f, 15.f}) {
    Rng rng2(21);
    const Matrix<float> vr = random_image(rng2, n, n, -range, range);
    ChambolleParams params;
    params.iterations = 50;
    const double e = rms(solve_fixed(vr, params).u, solve(vr, params).u);
    mag_table.add_row({"±" + TextTable::num(range, 1), TextTable::num(e, 4),
                       TextTable::num(100.0 * e / (2.0 * range), 3) + "%"});
  }
  std::cout << mag_table.to_string();
  std::printf("-> relative error stays small across the whole Q5.8 input "
              "range; the 13/9/9-bit packing of Section V-B is adequate for "
              "the optical-flow support fields.\n\n");

  // Throughput: the same bit-exact arithmetic, scalar loops vs the
  // vectorized kernel.  The paper's frame (316x252) and the accuracy
  // frame above.
  namespace kf = kernels::fixed;
  std::printf("Fixed-point iteration throughput (single thread, Mcells/s):\n");
  TextTable thr_table({"Frame", "fixed_scalar", "fixed_simd", "Speedup"});
  telemetry::BenchParams report;
  for (const auto& [rows, cols] :
       std::vector<std::pair<int, int>>{{64, 64}, {316, 252}}) {
    const double scalar = fixed_mcells(kf::Backend::kScalar, rows, cols);
    const std::string frame =
        std::to_string(rows) + "x" + std::to_string(cols);
    report.emplace_back("fixed_scalar_" + frame + "_mcells",
                        TextTable::num(scalar, 1));
    if (kf::backend_available(kf::Backend::kSimd)) {
      const double simd = fixed_mcells(kf::Backend::kSimd, rows, cols);
      thr_table.add_row({frame, TextTable::num(scalar, 1),
                         TextTable::num(simd, 1),
                         TextTable::num(simd / scalar, 2)});
      report.emplace_back("fixed_simd_" + frame + "_mcells",
                          TextTable::num(simd, 1));
      report.emplace_back("fixed_simd_" + frame + "_speedup",
                          TextTable::num(simd / scalar, 2));
    } else {
      thr_table.add_row(
          {frame, TextTable::num(scalar, 1), "n/a (no AVX2)", "-"});
    }
  }
  kf::reset_backend();
  std::cout << thr_table.to_string();
  std::printf("-> both columns produce bit-identical state (the differential "
              "oracle enforces it); the speedup costs no accuracy.\n");
  telemetry::write_bench_report("quantization_error", report,
                                wall.milliseconds());
  return 0;
}
