// quantization_error — end-to-end accuracy of the fixed-point datapath
// (Section V-B formats + Section V-C LUT sqrt) against the float reference:
// error vs iteration count, error vs input magnitude, and the contribution
// of the LUT sqrt in isolation (by contrast with a fixed-point solver that
// is identical except for an exact square root).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "chambolle/fixed_solver.hpp"
#include "chambolle/solver.hpp"
#include "common/rng.hpp"
#include "common/text_table.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace chambolle;

double rms(const Matrix<float>& a, const Matrix<float>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace

int main() {
  using namespace chambolle;
  std::printf("FIXED-POINT DATAPATH ACCURACY vs FLOAT REFERENCE\n");
  std::printf("(v: Q5.8 / 13 bits, px,py: Q1.8 / 9 bits, LUT sqrt)\n\n");

  Rng rng(11);
  const int n = 64;
  const Matrix<float> v = random_image(rng, n, n, -3.f, 3.f);

  std::printf("Error vs iteration count (64x64 random support field):\n");
  TextTable iter_table({"Iterations", "RMS(u) fixed vs float",
                        "max|u| fixed vs float", "RMS(px)"});
  for (const int iters : {1, 5, 20, 50, 100, 200}) {
    ChambolleParams params;
    params.iterations = iters;
    const ChambolleResult fx = solve_fixed(v, params);
    const ChambolleResult fl = solve(v, params);
    iter_table.add_row({std::to_string(iters),
                        TextTable::num(rms(fx.u, fl.u), 4),
                        TextTable::num(max_abs_diff(fx.u, fl.u), 4),
                        TextTable::num(rms(fx.p.px, fl.p.px), 4)});
  }
  std::cout << iter_table.to_string();
  std::printf("-> the error saturates with iterations (the projection keeps "
              "the dual bounded), staying in the few-LSB class of the Q*.8 "
              "formats.\n\n");

  std::printf("Error vs input magnitude (50 iterations):\n");
  TextTable mag_table({"Input range", "RMS(u) fixed vs float",
                       "relative to range"});
  for (const float range : {0.5f, 1.f, 2.f, 4.f, 8.f, 15.f}) {
    Rng rng2(21);
    const Matrix<float> vr = random_image(rng2, n, n, -range, range);
    ChambolleParams params;
    params.iterations = 50;
    const double e = rms(solve_fixed(vr, params).u, solve(vr, params).u);
    mag_table.add_row({"±" + TextTable::num(range, 1), TextTable::num(e, 4),
                       TextTable::num(100.0 * e / (2.0 * range), 3) + "%"});
  }
  std::cout << mag_table.to_string();
  std::printf("-> relative error stays small across the whole Q5.8 input "
              "range; the 13/9/9-bit packing of Section V-B is adequate for "
              "the optical-flow support fields.\n");
  return 0;
}
