// design_space — Pareto exploration of the accelerator design space
// (windows x lanes x tile shape x merge depth) under the XC5VLX110T budget,
// evaluated at the paper's 512x512 / 200-iteration workload.  Shows where
// the published configuration sits and what the models say the frontier
// looks like.
#include <cstdio>
#include <iostream>

#include "common/text_table.hpp"
#include "hw/dse.hpp"

int main() {
  using namespace chambolle;

  hw::DseOptions options;  // 512x512 @ 200 iterations by default
  const auto points = hw::explore(options);

  int fitting = 0, total = 0;
  for (const auto& p : points) {
    ++total;
    if (p.fits) ++fitting;
  }
  std::printf("DESIGN-SPACE EXPLORATION (512x512, 200 iterations, "
              "XC5VLX110T)\n");
  std::printf("%d candidate configurations, %d fit the device.\n\n", total,
              fitting);

  std::printf("Pareto frontier (fps vs LUTs, fitting points only):\n");
  TextTable frontier({"SWs", "Lanes", "Tile", "Merge", "fps", "LUTs", "DSPs",
                      "BRAMs"});
  for (const auto& p : points) {
    if (!p.pareto) continue;
    frontier.add_row({std::to_string(p.config.num_sliding_windows),
                      std::to_string(p.config.pe_lanes),
                      std::to_string(p.config.tile_rows) + "x" +
                          std::to_string(p.config.tile_cols),
                      std::to_string(p.config.merge_iterations),
                      TextTable::num(p.fps, 1), std::to_string(p.area.luts),
                      std::to_string(p.area.dsps),
                      std::to_string(p.area.brams)});
  }
  frontier.render(std::cout);

  std::printf("\nTop non-fitting configurations (what a bigger device would "
              "buy):\n");
  TextTable over({"SWs", "Lanes", "fps", "DSPs needed", "LUTs needed"});
  int shown = 0;
  for (const auto& p : points) {
    if (p.fits || shown >= 4) continue;
    ++shown;
    over.add_row({std::to_string(p.config.num_sliding_windows),
                  std::to_string(p.config.pe_lanes), TextTable::num(p.fps, 1),
                  std::to_string(p.area.dsps), std::to_string(p.area.luts)});
  }
  over.render(std::cout);

  const auto best = hw::best_fitting(options);
  std::printf("\nFastest fitting point: %d SWs x %d lanes, tile %dx%d, merge "
              "%d -> %.1f fps (%d DSPs of %d).\n",
              best.config.num_sliding_windows, best.config.pe_lanes,
              best.config.tile_rows, best.config.tile_cols,
              best.config.merge_iterations, best.fps, best.area.dsps,
              options.device.dsps);
  std::printf("The paper's class (2 SWs x 7 lanes, 92-col tile, DSP-bound at "
              "62/64) is the frontier's shape: window count saturates the "
              "DSP budget before anything else.\n");
  return 0;
}
