// table2_framerate — regenerates Table II: "Comparison w.r.t. state-of-the-
// art implementations" (experiments E2 + E8).
//
// Three kinds of rows:
//   * published GPU baselines, transcribed from [13]/[14] exactly as the
//     paper itself did;
//   * the proposed FPGA approach: OUR measured value comes from the
//     cycle-accurate simulator of the architecture (221 MHz Virtex-5 clock),
//     printed next to the paper's reported number;
//   * a live CPU software baseline measured on this host.
//
// The asserted reproduction target is the SHAPE of the comparison (FPGA
// beats every GPU baseline by an order of magnitude at 512x512 and scales to
// 1024x768); see EXPERIMENTS.md for the absolute-number discussion.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "baseline/cpu_baseline.hpp"
#include "baseline/published.hpp"
#include "common/stopwatch.hpp"
#include "common/text_table.hpp"
#include "hw/accelerator.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/telemetry.hpp"

int main() {
  using namespace chambolle;

  // Populate the BENCH_*.json metrics snapshot unless the env explicitly
  // opts out (this is a table printer, not a precision microbenchmark).
  if (std::getenv("CHAMBOLLE_TELEMETRY") == nullptr)
    telemetry::set_enabled(true);
  const Stopwatch wall;
  hw::ChambolleAccelerator accel{hw::ArchConfig{}};

  std::printf("TABLE II — COMPARISON W.R.T. STATE-OF-THE-ART IMPLEMENTATIONS\n\n");
  TextTable table({"Ref.", "Device", "Iterations", "Resolution",
                   "Frame Rate (fps)"});
  for (const auto& r : baseline::published_baselines()) {
    std::string fps = TextTable::num(r.fps, 1);
    if (!r.note.empty()) fps += "  (" + r.note + ")";
    table.add_row({r.reference, r.device, std::to_string(r.iterations),
                   std::to_string(r.width) + "x" + std::to_string(r.height),
                   fps});
  }

  // Our accelerator rows (the paper's two configurations).
  struct OurRow {
    int width, height, iterations;
    double paper_fps;
  };
  const OurRow ours[] = {{512, 512, 200, 99.1}, {1024, 768, 200, 38.1}};
  double our_fps_512 = 0.0;
  double our_pyr_512 = 0.0, our_pyr_768p = 0.0;
  for (const OurRow& r : ours) {
    const double fps = accel.estimate_fps(r.height, r.width, r.iterations);
    const double pyr =
        accel.estimate_pyramid_fps(r.height, r.width, r.iterations);
    if (r.width == 512) {
      our_fps_512 = fps;
      our_pyr_512 = pyr;
    } else {
      our_pyr_768p = pyr;
    }
    table.add_row({"this", "Virtex-5 sim (measured cycles)",
                   std::to_string(r.iterations),
                   std::to_string(r.width) + "x" + std::to_string(r.height),
                   TextTable::num(fps, 1) + " flat / " + TextTable::num(pyr, 1) +
                       " pyramid  (paper reports " +
                       TextTable::num(r.paper_fps, 1) + ")"});
  }

  // Live software baseline on this host (scaled-down measurement: the
  // per-pixel-iteration cost is measured at 256x256 and extrapolated).
  const auto cpu = baseline::measure_scalar_chambolle(256, 256, 50, 2);
  const double cpu_fps_512 =
      cpu.fps * (256.0 * 256.0 * 50.0) / (512.0 * 512.0 * 200.0);
  table.add_row({"this", "CPU scalar (this host, extrapolated)", "200",
                 "512x512", TextTable::num(cpu_fps_512, 2)});
  std::cout << table.to_string();

  // Speedup arithmetic (E8).  "flat" counts 200 full-resolution iterations;
  // "pyramid" spreads the 200-iteration budget across a 4-level TV-L1
  // pyramid, the scheme the GPU baselines actually run — the interpretation
  // under which the paper's absolute figures are reachable (EXPERIMENTS.md).
  const auto rows512 = baseline::baselines_for(512, 512, 0);
  const auto range = baseline::fps_range(rows512);
  std::printf("\nSpeedup at 512x512 vs published GPUs:\n");
  std::printf("  flat-iteration count   : %.1fx - %.1fx\n",
              our_fps_512 / range.max_fps, our_fps_512 / range.min_fps);
  std::printf("  pyramid-distributed    : %.1fx - %.1fx\n",
              our_pyr_512 / range.max_fps, our_pyr_512 / range.min_fps);
  std::printf("Paper reports 16.5x - 76x using its 99.1 fps figure "
              "(99.1/6 = 16.5, 99.1/1.3 = 76.2).\n");
  std::printf("Speedup vs this host's scalar CPU implementation: %.0fx flat\n",
              our_fps_512 / cpu_fps_512);

  // Shape assertions: who wins, and by how much.
  bool shape_holds = true;
  for (const auto& r : rows512)
    if (our_fps_512 <= r.fps) shape_holds = false;
  std::printf("\nShape check — FPGA beats every published 512x512 baseline "
              "even with flat counting: %s\n",
              shape_holds ? "yes" : "NO");
  std::printf("Shape check — order-of-magnitude speedup vs slowest baseline: %s "
              "(%.1fx flat, %.1fx pyramid)\n",
              our_fps_512 / range.min_fps >= 10.0 ? "yes" : "NO",
              our_fps_512 / range.min_fps, our_pyr_512 / range.min_fps);
  std::printf("Shape check — real-time-class rate at 1024x768 (paper: 38.1): "
              "%s (%.1f fps pyramid, %.1f fps flat)\n",
              our_pyr_768p > 24.0 ? "yes" : "NO", our_pyr_768p,
              accel.estimate_fps(768, 1024, 200));

  // Live CPU thread-scaling section (the paper's software point of
  // comparison ran on a multithreaded x86): the tiled solver on the Table-2
  // software frame (316x252, 50 iterations, merge 5), once per engine.  The
  // pooled engine reuses resident workers across every pass; the spawn
  // engine is the legacy thread-per-pass baseline.  The fps ratio is the
  // perf trajectory the BENCH json tracks.
  std::printf("\nCPU tiled solver thread scaling (316x252, 50 iterations):\n");
  TextTable scaling({"Threads", "Engine", "ms/frame", "fps", "pool/spawn"});
  telemetry::BenchParams scaling_params;
  for (const int threads : {1, 2, 4, 8}) {
    TiledSolverOptions opt;
    opt.merge_iterations = 5;
    opt.num_threads = threads;
    opt.execution = parallel::Execution::kPool;
    const auto pooled = baseline::measure_tiled_chambolle(252, 316, 50, opt, 3);
    opt.execution = parallel::Execution::kSpawn;
    const auto spawn = baseline::measure_tiled_chambolle(252, 316, 50, opt, 3);
    const double ratio =
        pooled.seconds_per_frame > 0
            ? spawn.seconds_per_frame / pooled.seconds_per_frame
            : 0.0;
    scaling.add_row({std::to_string(threads), "pool",
                     TextTable::num(1e3 * pooled.seconds_per_frame, 2),
                     TextTable::num(pooled.fps, 1), TextTable::num(ratio, 2)});
    scaling.add_row({std::to_string(threads), "spawn",
                     TextTable::num(1e3 * spawn.seconds_per_frame, 2),
                     TextTable::num(spawn.fps, 1), ""});
    const std::string t = std::to_string(threads);
    scaling_params.emplace_back("cpu_tiled_pool_fps_" + t + "t",
                                TextTable::num(pooled.fps, 2));
    scaling_params.emplace_back("cpu_tiled_spawn_fps_" + t + "t",
                                TextTable::num(spawn.fps, 2));
    scaling_params.emplace_back("cpu_tiled_pool_speedup_" + t + "t",
                                TextTable::num(ratio, 2));
  }
  std::cout << scaling.to_string();
  std::printf("pool lifetime: %llu tasks, %llu threads created\n",
              static_cast<unsigned long long>(
                  parallel::default_pool().tasks()),
              static_cast<unsigned long long>(
                  parallel::default_pool().threads_created()));

  telemetry::BenchParams report{
      {"iterations", "200"},
      {"resolutions", "512x512,1024x768"},
      {"fps_512_flat", TextTable::num(our_fps_512, 2)},
      {"fps_512_pyramid", TextTable::num(our_pyr_512, 2)},
      {"fps_768p_pyramid", TextTable::num(our_pyr_768p, 2)},
      {"cpu_fps_512_extrapolated", TextTable::num(cpu_fps_512, 3)},
      {"cpu_scaling_frame", "316x252"},
      {"shape_holds", shape_holds ? "yes" : "no"}};
  report.insert(report.end(), scaling_params.begin(), scaling_params.end());
  telemetry::write_bench_report("table2_framerate", report,
                                wall.milliseconds());
  return shape_holds ? 0 : 1;
}
