// ablation_arch — architecture ablations for the design choices DESIGN.md
// calls out: number of sliding windows, PE ladder depth, merge depth, and
// off-chip bandwidth.  Each knob trades Table I area against Table II frame
// rate; the paper's configuration (2 SWs x 7 lanes, merge-class halos) is
// shown in context.
#include <cstdio>
#include <iostream>

#include "common/text_table.hpp"
#include "hw/accelerator.hpp"
#include "hw/dram_model.hpp"
#include "hw/resource_model.hpp"

int main() {
  using namespace chambolle;
  const hw::Virtex5Spec device;

  std::printf("ARCHITECTURE ABLATIONS (512x512, 200 iterations, 221 MHz)\n\n");

  std::printf("Sliding-window count (throughput engines vs area):\n");
  TextTable sw_table({"SWs", "fps", "LUTs", "DSPs", "BRAMs", "Fits device"});
  for (const int sw : {1, 2, 3, 4}) {
    hw::ArchConfig cfg;
    cfg.num_sliding_windows = sw;
    const double fps = hw::ChambolleAccelerator(cfg).estimate_fps(512, 512, 200);
    const hw::ResourceReport area = hw::estimate_resources(cfg);
    const bool fits = area.luts <= device.luts && area.dsps <= device.dsps &&
                      area.brams <= device.brams &&
                      area.flipflops <= device.flipflops;
    sw_table.add_row({std::to_string(sw), TextTable::num(fps, 1),
                      std::to_string(area.luts), std::to_string(area.dsps),
                      std::to_string(area.brams), fits ? "yes" : "NO"});
  }
  std::cout << sw_table.to_string();
  std::printf("-> the paper's 2 SWs nearly exhaust the XC5VLX110T's 64 DSPs;"
              " a third window does not fit.\n\n");

  std::printf("PE ladder depth (lanes per array; BRAMs = lanes + 1):\n");
  TextTable lane_table({"Lanes", "Tile", "fps", "DSPs", "BRAMs"});
  for (const int lanes : {3, 5, 7, 11}) {
    hw::ArchConfig cfg;
    cfg.pe_lanes = lanes;
    cfg.num_brams = lanes + 1;
    cfg.tile_rows = ((88 + lanes) / (lanes + 1)) * (lanes + 1);
    const double fps = hw::ChambolleAccelerator(cfg).estimate_fps(512, 512, 200);
    const hw::ResourceReport area = hw::estimate_resources(cfg);
    lane_table.add_row({std::to_string(lanes),
                        std::to_string(cfg.tile_rows) + "x" +
                            std::to_string(cfg.tile_cols),
                        TextTable::num(fps, 1), std::to_string(area.dsps),
                        std::to_string(area.brams)});
  }
  std::cout << lane_table.to_string();
  std::printf("-> throughput scales with ladder depth until the DSP budget "
              "binds (each extra PE-V costs 2 DSPs x 4 arrays).\n\n");

  std::printf("Off-chip bandwidth (overlapped transfers, merge depth 4):\n");
  TextTable bw_table({"Bandwidth", "Transfer (ms/frame)", "Compute (ms/frame)",
                      "Overlapped fps", "Bound"});
  for (const double gbps : {0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6}) {
    hw::DramConfig dram;
    dram.bytes_per_second = gbps * 1e9;
    const hw::TrafficReport r =
        hw::estimate_traffic(hw::ArchConfig{}, 512, 512, 200, dram);
    bw_table.add_row({TextTable::num(gbps, 1) + " GB/s",
                      TextTable::num(r.transfer_seconds * 1e3, 1),
                      TextTable::num(r.compute_seconds * 1e3, 1),
                      TextTable::num(r.overlapped_fps(), 1),
                      r.compute_bound() ? "compute" : "memory"});
  }
  std::cout << bw_table.to_string();
  std::printf("-> at DDR2-era bandwidth the per-pass streaming dominates — "
              "the quantified reason Table II assumes pre-loaded frames.\n\n");

  std::printf("Merge depth under a 1.6 GB/s memory (compute vs traffic "
              "trade):\n");
  TextTable merge_table({"Merge", "Compute fps", "Overlapped fps",
                         "Bytes/frame (MB)"});
  for (const int k : {1, 2, 4, 8, 16, 32}) {
    hw::ArchConfig cfg;
    cfg.merge_iterations = k;
    hw::DramConfig dram;
    const hw::TrafficReport r = hw::estimate_traffic(cfg, 512, 512, 200, dram);
    merge_table.add_row(
        {std::to_string(k), TextTable::num(1.0 / r.compute_seconds, 1),
         TextTable::num(r.overlapped_fps(), 1),
         TextTable::num(static_cast<double>(r.total_bytes()) / 1e6, 1)});
  }
  std::cout << merge_table.to_string();
  std::printf("-> deeper merges cut memory passes; with realistic bandwidth "
              "the fps-optimal merge depth moves above the compute-only "
              "optimum.\n");
  return 0;
}
