// flow_quality — experiment E12: the algorithmic comparison implicit in the
// paper's Sections I-II.  TV-L1 (the accelerated algorithm) against
// Horn-Schunck [7] (classical variational, L2 prior) and block matching
// (the fast FPGA motion-detection class of [15]) across scenes that expose
// each method's signature weakness:
//   * sub-pixel pan           -> block matching quantizes;
//   * motion discontinuity    -> Horn-Schunck over-smooths;
//   * noise                   -> L2 data terms degrade, TV-L1's L1 survives;
//   * rotation / zoom         -> smooth non-translational fields.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "baseline/block_matching.hpp"
#include "baseline/horn_schunck.hpp"
#include "common/stopwatch.hpp"
#include "common/text_table.hpp"
#include "tvl1/tvl1.hpp"
#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace chambolle;

struct Scene {
  std::string name;
  workloads::FlowWorkload wl;
};

}  // namespace

int main() {
  const int N = 64;
  std::vector<Scene> scenes;
  scenes.push_back({"pan 0.5px (sub-pixel)",
                    workloads::translating_scene(N, N, 0.5f, 0.f, 201)});
  scenes.push_back({"pan (3,2)px",
                    workloads::translating_scene(N, N, 3.f, 2.f, 202)});
  scenes.push_back({"rotate 0.04rad", workloads::rotating_scene(N, N, 0.04f, 203)});
  scenes.push_back({"zoom x1.05", workloads::zooming_scene(N, N, 1.05f, 204)});
  scenes.push_back({"moving square (discontinuity)",
                    workloads::moving_square(N, N, 20, 3, 0)});
  {
    auto noisy = workloads::translating_scene(N, N, 2.f, 0.f, 205);
    workloads::corrupt(noisy, 8.f);
    scenes.push_back({"pan (2,0)px + heavy noise", std::move(noisy)});
  }

  tvl1::Tvl1Params tv;
  tv.pyramid_levels = 3;
  tv.warps = 5;
  tv.chambolle.iterations = 40;

  baseline::HornSchunckParams hs;
  hs.pyramid_levels = 3;
  hs.warps = 3;
  hs.iterations = 80;

  baseline::BlockMatchingParams bm;

  std::printf("OPTICAL-FLOW QUALITY: TV-L1 (accelerated here) vs BASELINES\n");
  std::printf("(average endpoint error in pixels, interior; lower is "
              "better)\n\n");
  TextTable table({"Scene", "TV-L1", "Horn-Schunck", "Block matching"});

  int tv_wins = 0;
  for (const Scene& s : scenes) {
    const double e_tv = workloads::interior_endpoint_error(
        tvl1::compute_flow(s.wl.frame0, s.wl.frame1, tv), s.wl.ground_truth,
        8);
    const double e_hs = workloads::interior_endpoint_error(
        baseline::horn_schunck_flow(s.wl.frame0, s.wl.frame1, hs),
        s.wl.ground_truth, 8);
    const double e_bm = workloads::interior_endpoint_error(
        baseline::block_matching_flow(s.wl.frame0, s.wl.frame1, bm),
        s.wl.ground_truth, 8);
    if (e_tv <= e_hs && e_tv <= e_bm) ++tv_wins;
    table.add_row({s.name, TextTable::num(e_tv, 3), TextTable::num(e_hs, 3),
                   TextTable::num(e_bm, 3)});
  }
  table.render(std::cout);

  std::printf("\nTV-L1 best or tied on %d of %zu scenes.\n", tv_wins,
              scenes.size());
  std::printf("Block matching is the [15]-class method: fast and "
              "FPGA-friendly, but integer-quantized — 'it cannot be used in "
              "other applications such as rolling shutter correction' "
              "(Section II-B).\n");
  std::printf("Horn-Schunck's quadratic prior smears motion boundaries — the "
              "reason the paper accelerates TV-L1 despite its cost.\n");
  return tv_wins >= 4 ? 0 : 1;
}
