// fig1_dependency — regenerates Figure 1's dependency analysis (experiment
// E3): how many iteration-n elements a group of elements at iteration n+x
// requires, for varying group shapes and merge depths, including the paper's
// two quoted datapoints (7 for 1 element, 14 => 3.5/element for a 2x2 group)
// and the "squared shape minimizes overhead" observation.
#include <cstdio>
#include <iostream>

#include "chambolle/dependency.hpp"
#include "common/text_table.hpp"

int main() {
  using namespace chambolle;

  std::printf("FIGURE 1 — DATA DEPENDENCIES ACROSS ITERATIONS\n\n");

  std::printf("Dependency stencil of one Chambolle iteration (%zu elements):\n",
              dependency_stencil().size());
  for (const Offset& o : dependency_stencil())
    std::printf("  (dr=%+d, dc=%+d)\n", o.dr, o.dc);

  std::printf("\nCone size per group shape (depth 1):\n");
  TextTable shapes({"Group", "Elements", "Cone", "Per element"});
  for (const auto& [gr, gc] : {std::pair{1, 1}, std::pair{1, 2}, std::pair{2, 2},
                              std::pair{1, 4}, std::pair{2, 4}, std::pair{4, 4},
                              std::pair{1, 16}, std::pair{2, 8},
                              std::pair{8, 8}, std::pair{16, 16}}) {
    const DecompositionOverhead o = decomposition_overhead(gr, gc, 1);
    shapes.add_row({std::to_string(gr) + "x" + std::to_string(gc),
                    std::to_string(o.group_elements),
                    std::to_string(o.cone_elements),
                    TextTable::num(o.per_element, 2)});
  }
  std::cout << shapes.to_string();

  std::printf("\nCone growth with merge depth (Figure 1.c direction):\n");
  TextTable depth({"Group", "Depth", "Cone", "Per element"});
  for (int d = 1; d <= 6; ++d) {
    const DecompositionOverhead o1 = decomposition_overhead(1, 1, d);
    const DecompositionOverhead o7 = decomposition_overhead(7, 7, d);
    depth.add_row({"1x1", std::to_string(d), std::to_string(o1.cone_elements),
                   TextTable::num(o1.per_element, 2)});
    depth.add_row({"7x7", std::to_string(d), std::to_string(o7.cone_elements),
                   TextTable::num(o7.per_element, 2)});
  }
  std::cout << depth.to_string();

  const DecompositionOverhead single = decomposition_overhead(1, 1, 1);
  const DecompositionOverhead quad = decomposition_overhead(2, 2, 1);
  const bool ok_single = single.cone_elements == 7;
  const bool ok_quad = quad.cone_elements == 14 && quad.per_element == 3.5;
  const bool ok_square = decomposition_overhead(4, 4, 1).per_element <
                         decomposition_overhead(1, 16, 1).per_element;
  std::printf("\nPaper claims reproduced:\n");
  std::printf("  Fig 1.a — 7 elements at n for 1 element at n+1    : %s\n",
              ok_single ? "yes" : "NO");
  std::printf("  Fig 1.b — 14 elements for a 2x2 group (3.5/elem)  : %s\n",
              ok_quad ? "yes" : "NO");
  std::printf("  square groups minimize the overhead               : %s\n",
              ok_square ? "yes" : "NO");
  return ok_single && ok_quad && ok_square ? 0 : 1;
}
