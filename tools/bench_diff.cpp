// bench_diff — CLI front end of telemetry::bench_diff (the CI perf gate).
//
//   bench_diff [options] BASE.json PR.json
//     --threshold F   fixed relative regression threshold (default 0.10)
//     --noise-mult F  MAD multiplier for the noise-aware widening (default 3)
//     --single-sample-noise F
//                     assumed relative noise for a side whose repeats carry
//                     _n <= 1, where the MAD is degenerately 0 (default 0.08)
//     --json PATH     also write the machine-readable verdict to PATH
//
// Exit status: 0 pass (improvements and unchanged keys included), 1 at least
// one regression, 2 usage or parse error.  Keys present on only one side are
// reported as "missing" and never fail the gate, so adding or renaming a
// benchmark does not break CI for unrelated PRs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/bench_diff.hpp"
#include "telemetry/json_util.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threshold F] [--noise-mult F] "
               "[--single-sample-noise F] [--json PATH] BASE.json PR.json\n",
               argv0);
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace chambolle::telemetry;
  BenchDiffOptions opts;
  std::string json_out;
  std::string paths[2];
  int npaths = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](double* out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      *out = std::strtod(argv[++i], &end);
      return end != argv[i] && *end == '\0';
    };
    if (arg == "--threshold") {
      if (!next_value(&opts.threshold)) return usage(argv[0]);
    } else if (arg == "--noise-mult") {
      if (!next_value(&opts.noise_mult)) return usage(argv[0]);
    } else if (arg == "--single-sample-noise") {
      if (!next_value(&opts.single_sample_noise)) return usage(argv[0]);
    } else if (arg == "--json") {
      if (i + 1 >= argc) return usage(argv[0]);
      json_out = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (npaths < 2) {
      paths[npaths++] = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (npaths != 2) return usage(argv[0]);

  BenchReport reports[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (!read_file(paths[i], &text)) {
      std::fprintf(stderr, "bench_diff: cannot read %s\n", paths[i].c_str());
      return 2;
    }
    if (!parse_bench_report(text, &reports[i])) {
      std::fprintf(stderr, "bench_diff: %s is not a BENCH report\n",
                   paths[i].c_str());
      return 2;
    }
  }
  if (!reports[0].name.empty() && reports[0].name != reports[1].name)
    std::fprintf(stderr, "bench_diff: warning: comparing '%s' vs '%s'\n",
                 reports[0].name.c_str(), reports[1].name.c_str());

  const BenchDiffResult result = bench_diff(reports[0], reports[1], opts);
  std::fputs(result.to_table().c_str(), stdout);
  if (!json_out.empty() && !write_text_file(json_out, result.to_json())) {
    std::fprintf(stderr, "bench_diff: cannot write %s\n", json_out.c_str());
    return 2;
  }
  return result.has_regression() ? 1 : 0;
}
