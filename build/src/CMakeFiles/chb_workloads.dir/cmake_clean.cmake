file(REMOVE_RECURSE
  "CMakeFiles/chb_workloads.dir/workloads/flow_eval.cpp.o"
  "CMakeFiles/chb_workloads.dir/workloads/flow_eval.cpp.o.d"
  "CMakeFiles/chb_workloads.dir/workloads/metrics.cpp.o"
  "CMakeFiles/chb_workloads.dir/workloads/metrics.cpp.o.d"
  "CMakeFiles/chb_workloads.dir/workloads/rolling_shutter.cpp.o"
  "CMakeFiles/chb_workloads.dir/workloads/rolling_shutter.cpp.o.d"
  "CMakeFiles/chb_workloads.dir/workloads/sequence.cpp.o"
  "CMakeFiles/chb_workloads.dir/workloads/sequence.cpp.o.d"
  "CMakeFiles/chb_workloads.dir/workloads/synthetic.cpp.o"
  "CMakeFiles/chb_workloads.dir/workloads/synthetic.cpp.o.d"
  "libchb_workloads.a"
  "libchb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
