# Empty compiler generated dependencies file for chb_workloads.
# This may be replaced when dependencies are built.
