file(REMOVE_RECURSE
  "libchb_workloads.a"
)
