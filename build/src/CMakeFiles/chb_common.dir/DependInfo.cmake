
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/flo_io.cpp" "src/CMakeFiles/chb_common.dir/common/flo_io.cpp.o" "gcc" "src/CMakeFiles/chb_common.dir/common/flo_io.cpp.o.d"
  "/root/repo/src/common/flow_color.cpp" "src/CMakeFiles/chb_common.dir/common/flow_color.cpp.o" "gcc" "src/CMakeFiles/chb_common.dir/common/flow_color.cpp.o.d"
  "/root/repo/src/common/image.cpp" "src/CMakeFiles/chb_common.dir/common/image.cpp.o" "gcc" "src/CMakeFiles/chb_common.dir/common/image.cpp.o.d"
  "/root/repo/src/common/image_io.cpp" "src/CMakeFiles/chb_common.dir/common/image_io.cpp.o" "gcc" "src/CMakeFiles/chb_common.dir/common/image_io.cpp.o.d"
  "/root/repo/src/common/text_table.cpp" "src/CMakeFiles/chb_common.dir/common/text_table.cpp.o" "gcc" "src/CMakeFiles/chb_common.dir/common/text_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
