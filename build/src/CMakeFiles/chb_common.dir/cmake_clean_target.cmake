file(REMOVE_RECURSE
  "libchb_common.a"
)
