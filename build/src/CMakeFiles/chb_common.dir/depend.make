# Empty dependencies file for chb_common.
# This may be replaced when dependencies are built.
