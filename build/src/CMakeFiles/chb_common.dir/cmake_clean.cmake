file(REMOVE_RECURSE
  "CMakeFiles/chb_common.dir/common/flo_io.cpp.o"
  "CMakeFiles/chb_common.dir/common/flo_io.cpp.o.d"
  "CMakeFiles/chb_common.dir/common/flow_color.cpp.o"
  "CMakeFiles/chb_common.dir/common/flow_color.cpp.o.d"
  "CMakeFiles/chb_common.dir/common/image.cpp.o"
  "CMakeFiles/chb_common.dir/common/image.cpp.o.d"
  "CMakeFiles/chb_common.dir/common/image_io.cpp.o"
  "CMakeFiles/chb_common.dir/common/image_io.cpp.o.d"
  "CMakeFiles/chb_common.dir/common/text_table.cpp.o"
  "CMakeFiles/chb_common.dir/common/text_table.cpp.o.d"
  "libchb_common.a"
  "libchb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
