file(REMOVE_RECURSE
  "libchb_fixedpoint.a"
)
