# Empty compiler generated dependencies file for chb_fixedpoint.
# This may be replaced when dependencies are built.
