file(REMOVE_RECURSE
  "CMakeFiles/chb_fixedpoint.dir/fixedpoint/lut_sqrt.cpp.o"
  "CMakeFiles/chb_fixedpoint.dir/fixedpoint/lut_sqrt.cpp.o.d"
  "CMakeFiles/chb_fixedpoint.dir/fixedpoint/nonrestoring_sqrt.cpp.o"
  "CMakeFiles/chb_fixedpoint.dir/fixedpoint/nonrestoring_sqrt.cpp.o.d"
  "libchb_fixedpoint.a"
  "libchb_fixedpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chb_fixedpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
