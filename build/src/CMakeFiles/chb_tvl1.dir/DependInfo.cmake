
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tvl1/accel_backend.cpp" "src/CMakeFiles/chb_tvl1.dir/tvl1/accel_backend.cpp.o" "gcc" "src/CMakeFiles/chb_tvl1.dir/tvl1/accel_backend.cpp.o.d"
  "/root/repo/src/tvl1/consistency.cpp" "src/CMakeFiles/chb_tvl1.dir/tvl1/consistency.cpp.o" "gcc" "src/CMakeFiles/chb_tvl1.dir/tvl1/consistency.cpp.o.d"
  "/root/repo/src/tvl1/fixed_threshold.cpp" "src/CMakeFiles/chb_tvl1.dir/tvl1/fixed_threshold.cpp.o" "gcc" "src/CMakeFiles/chb_tvl1.dir/tvl1/fixed_threshold.cpp.o.d"
  "/root/repo/src/tvl1/median_filter.cpp" "src/CMakeFiles/chb_tvl1.dir/tvl1/median_filter.cpp.o" "gcc" "src/CMakeFiles/chb_tvl1.dir/tvl1/median_filter.cpp.o.d"
  "/root/repo/src/tvl1/pyramid.cpp" "src/CMakeFiles/chb_tvl1.dir/tvl1/pyramid.cpp.o" "gcc" "src/CMakeFiles/chb_tvl1.dir/tvl1/pyramid.cpp.o.d"
  "/root/repo/src/tvl1/structure_texture.cpp" "src/CMakeFiles/chb_tvl1.dir/tvl1/structure_texture.cpp.o" "gcc" "src/CMakeFiles/chb_tvl1.dir/tvl1/structure_texture.cpp.o.d"
  "/root/repo/src/tvl1/threshold.cpp" "src/CMakeFiles/chb_tvl1.dir/tvl1/threshold.cpp.o" "gcc" "src/CMakeFiles/chb_tvl1.dir/tvl1/threshold.cpp.o.d"
  "/root/repo/src/tvl1/tvl1.cpp" "src/CMakeFiles/chb_tvl1.dir/tvl1/tvl1.cpp.o" "gcc" "src/CMakeFiles/chb_tvl1.dir/tvl1/tvl1.cpp.o.d"
  "/root/repo/src/tvl1/video_runner.cpp" "src/CMakeFiles/chb_tvl1.dir/tvl1/video_runner.cpp.o" "gcc" "src/CMakeFiles/chb_tvl1.dir/tvl1/video_runner.cpp.o.d"
  "/root/repo/src/tvl1/warp.cpp" "src/CMakeFiles/chb_tvl1.dir/tvl1/warp.cpp.o" "gcc" "src/CMakeFiles/chb_tvl1.dir/tvl1/warp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chb_chambolle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_fixedpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
