file(REMOVE_RECURSE
  "CMakeFiles/chb_tvl1.dir/tvl1/accel_backend.cpp.o"
  "CMakeFiles/chb_tvl1.dir/tvl1/accel_backend.cpp.o.d"
  "CMakeFiles/chb_tvl1.dir/tvl1/consistency.cpp.o"
  "CMakeFiles/chb_tvl1.dir/tvl1/consistency.cpp.o.d"
  "CMakeFiles/chb_tvl1.dir/tvl1/fixed_threshold.cpp.o"
  "CMakeFiles/chb_tvl1.dir/tvl1/fixed_threshold.cpp.o.d"
  "CMakeFiles/chb_tvl1.dir/tvl1/median_filter.cpp.o"
  "CMakeFiles/chb_tvl1.dir/tvl1/median_filter.cpp.o.d"
  "CMakeFiles/chb_tvl1.dir/tvl1/pyramid.cpp.o"
  "CMakeFiles/chb_tvl1.dir/tvl1/pyramid.cpp.o.d"
  "CMakeFiles/chb_tvl1.dir/tvl1/structure_texture.cpp.o"
  "CMakeFiles/chb_tvl1.dir/tvl1/structure_texture.cpp.o.d"
  "CMakeFiles/chb_tvl1.dir/tvl1/threshold.cpp.o"
  "CMakeFiles/chb_tvl1.dir/tvl1/threshold.cpp.o.d"
  "CMakeFiles/chb_tvl1.dir/tvl1/tvl1.cpp.o"
  "CMakeFiles/chb_tvl1.dir/tvl1/tvl1.cpp.o.d"
  "CMakeFiles/chb_tvl1.dir/tvl1/video_runner.cpp.o"
  "CMakeFiles/chb_tvl1.dir/tvl1/video_runner.cpp.o.d"
  "CMakeFiles/chb_tvl1.dir/tvl1/warp.cpp.o"
  "CMakeFiles/chb_tvl1.dir/tvl1/warp.cpp.o.d"
  "libchb_tvl1.a"
  "libchb_tvl1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chb_tvl1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
