file(REMOVE_RECURSE
  "libchb_tvl1.a"
)
