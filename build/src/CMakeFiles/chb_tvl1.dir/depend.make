# Empty dependencies file for chb_tvl1.
# This may be replaced when dependencies are built.
