file(REMOVE_RECURSE
  "libchb_grid.a"
)
