file(REMOVE_RECURSE
  "CMakeFiles/chb_grid.dir/grid/diff_ops.cpp.o"
  "CMakeFiles/chb_grid.dir/grid/diff_ops.cpp.o.d"
  "libchb_grid.a"
  "libchb_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chb_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
