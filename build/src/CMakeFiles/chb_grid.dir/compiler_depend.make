# Empty compiler generated dependencies file for chb_grid.
# This may be replaced when dependencies are built.
