
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/accelerator.cpp" "src/CMakeFiles/chb_hw.dir/hw/accelerator.cpp.o" "gcc" "src/CMakeFiles/chb_hw.dir/hw/accelerator.cpp.o.d"
  "/root/repo/src/hw/bram.cpp" "src/CMakeFiles/chb_hw.dir/hw/bram.cpp.o" "gcc" "src/CMakeFiles/chb_hw.dir/hw/bram.cpp.o.d"
  "/root/repo/src/hw/control_unit.cpp" "src/CMakeFiles/chb_hw.dir/hw/control_unit.cpp.o" "gcc" "src/CMakeFiles/chb_hw.dir/hw/control_unit.cpp.o.d"
  "/root/repo/src/hw/datasheet.cpp" "src/CMakeFiles/chb_hw.dir/hw/datasheet.cpp.o" "gcc" "src/CMakeFiles/chb_hw.dir/hw/datasheet.cpp.o.d"
  "/root/repo/src/hw/dram_model.cpp" "src/CMakeFiles/chb_hw.dir/hw/dram_model.cpp.o" "gcc" "src/CMakeFiles/chb_hw.dir/hw/dram_model.cpp.o.d"
  "/root/repo/src/hw/dse.cpp" "src/CMakeFiles/chb_hw.dir/hw/dse.cpp.o" "gcc" "src/CMakeFiles/chb_hw.dir/hw/dse.cpp.o.d"
  "/root/repo/src/hw/pe.cpp" "src/CMakeFiles/chb_hw.dir/hw/pe.cpp.o" "gcc" "src/CMakeFiles/chb_hw.dir/hw/pe.cpp.o.d"
  "/root/repo/src/hw/pe_array.cpp" "src/CMakeFiles/chb_hw.dir/hw/pe_array.cpp.o" "gcc" "src/CMakeFiles/chb_hw.dir/hw/pe_array.cpp.o.d"
  "/root/repo/src/hw/resource_model.cpp" "src/CMakeFiles/chb_hw.dir/hw/resource_model.cpp.o" "gcc" "src/CMakeFiles/chb_hw.dir/hw/resource_model.cpp.o.d"
  "/root/repo/src/hw/schedule.cpp" "src/CMakeFiles/chb_hw.dir/hw/schedule.cpp.o" "gcc" "src/CMakeFiles/chb_hw.dir/hw/schedule.cpp.o.d"
  "/root/repo/src/hw/sliding_window.cpp" "src/CMakeFiles/chb_hw.dir/hw/sliding_window.cpp.o" "gcc" "src/CMakeFiles/chb_hw.dir/hw/sliding_window.cpp.o.d"
  "/root/repo/src/hw/verilog_export.cpp" "src/CMakeFiles/chb_hw.dir/hw/verilog_export.cpp.o" "gcc" "src/CMakeFiles/chb_hw.dir/hw/verilog_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chb_chambolle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_fixedpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
