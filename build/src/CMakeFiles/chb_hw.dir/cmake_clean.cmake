file(REMOVE_RECURSE
  "CMakeFiles/chb_hw.dir/hw/accelerator.cpp.o"
  "CMakeFiles/chb_hw.dir/hw/accelerator.cpp.o.d"
  "CMakeFiles/chb_hw.dir/hw/bram.cpp.o"
  "CMakeFiles/chb_hw.dir/hw/bram.cpp.o.d"
  "CMakeFiles/chb_hw.dir/hw/control_unit.cpp.o"
  "CMakeFiles/chb_hw.dir/hw/control_unit.cpp.o.d"
  "CMakeFiles/chb_hw.dir/hw/datasheet.cpp.o"
  "CMakeFiles/chb_hw.dir/hw/datasheet.cpp.o.d"
  "CMakeFiles/chb_hw.dir/hw/dram_model.cpp.o"
  "CMakeFiles/chb_hw.dir/hw/dram_model.cpp.o.d"
  "CMakeFiles/chb_hw.dir/hw/dse.cpp.o"
  "CMakeFiles/chb_hw.dir/hw/dse.cpp.o.d"
  "CMakeFiles/chb_hw.dir/hw/pe.cpp.o"
  "CMakeFiles/chb_hw.dir/hw/pe.cpp.o.d"
  "CMakeFiles/chb_hw.dir/hw/pe_array.cpp.o"
  "CMakeFiles/chb_hw.dir/hw/pe_array.cpp.o.d"
  "CMakeFiles/chb_hw.dir/hw/resource_model.cpp.o"
  "CMakeFiles/chb_hw.dir/hw/resource_model.cpp.o.d"
  "CMakeFiles/chb_hw.dir/hw/schedule.cpp.o"
  "CMakeFiles/chb_hw.dir/hw/schedule.cpp.o.d"
  "CMakeFiles/chb_hw.dir/hw/sliding_window.cpp.o"
  "CMakeFiles/chb_hw.dir/hw/sliding_window.cpp.o.d"
  "CMakeFiles/chb_hw.dir/hw/verilog_export.cpp.o"
  "CMakeFiles/chb_hw.dir/hw/verilog_export.cpp.o.d"
  "libchb_hw.a"
  "libchb_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chb_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
