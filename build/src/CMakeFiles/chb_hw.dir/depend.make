# Empty dependencies file for chb_hw.
# This may be replaced when dependencies are built.
