file(REMOVE_RECURSE
  "libchb_hw.a"
)
