# Empty compiler generated dependencies file for chb_baseline.
# This may be replaced when dependencies are built.
