file(REMOVE_RECURSE
  "CMakeFiles/chb_baseline.dir/baseline/block_matching.cpp.o"
  "CMakeFiles/chb_baseline.dir/baseline/block_matching.cpp.o.d"
  "CMakeFiles/chb_baseline.dir/baseline/cpu_baseline.cpp.o"
  "CMakeFiles/chb_baseline.dir/baseline/cpu_baseline.cpp.o.d"
  "CMakeFiles/chb_baseline.dir/baseline/horn_schunck.cpp.o"
  "CMakeFiles/chb_baseline.dir/baseline/horn_schunck.cpp.o.d"
  "CMakeFiles/chb_baseline.dir/baseline/published.cpp.o"
  "CMakeFiles/chb_baseline.dir/baseline/published.cpp.o.d"
  "libchb_baseline.a"
  "libchb_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chb_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
