file(REMOVE_RECURSE
  "libchb_baseline.a"
)
