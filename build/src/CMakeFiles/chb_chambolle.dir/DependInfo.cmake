
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chambolle/adaptive.cpp" "src/CMakeFiles/chb_chambolle.dir/chambolle/adaptive.cpp.o" "gcc" "src/CMakeFiles/chb_chambolle.dir/chambolle/adaptive.cpp.o.d"
  "/root/repo/src/chambolle/chambolle_pock.cpp" "src/CMakeFiles/chb_chambolle.dir/chambolle/chambolle_pock.cpp.o" "gcc" "src/CMakeFiles/chb_chambolle.dir/chambolle/chambolle_pock.cpp.o.d"
  "/root/repo/src/chambolle/dependency.cpp" "src/CMakeFiles/chb_chambolle.dir/chambolle/dependency.cpp.o" "gcc" "src/CMakeFiles/chb_chambolle.dir/chambolle/dependency.cpp.o.d"
  "/root/repo/src/chambolle/energy.cpp" "src/CMakeFiles/chb_chambolle.dir/chambolle/energy.cpp.o" "gcc" "src/CMakeFiles/chb_chambolle.dir/chambolle/energy.cpp.o.d"
  "/root/repo/src/chambolle/fixed_solver.cpp" "src/CMakeFiles/chb_chambolle.dir/chambolle/fixed_solver.cpp.o" "gcc" "src/CMakeFiles/chb_chambolle.dir/chambolle/fixed_solver.cpp.o.d"
  "/root/repo/src/chambolle/merged.cpp" "src/CMakeFiles/chb_chambolle.dir/chambolle/merged.cpp.o" "gcc" "src/CMakeFiles/chb_chambolle.dir/chambolle/merged.cpp.o.d"
  "/root/repo/src/chambolle/row_parallel.cpp" "src/CMakeFiles/chb_chambolle.dir/chambolle/row_parallel.cpp.o" "gcc" "src/CMakeFiles/chb_chambolle.dir/chambolle/row_parallel.cpp.o.d"
  "/root/repo/src/chambolle/solver.cpp" "src/CMakeFiles/chb_chambolle.dir/chambolle/solver.cpp.o" "gcc" "src/CMakeFiles/chb_chambolle.dir/chambolle/solver.cpp.o.d"
  "/root/repo/src/chambolle/tile.cpp" "src/CMakeFiles/chb_chambolle.dir/chambolle/tile.cpp.o" "gcc" "src/CMakeFiles/chb_chambolle.dir/chambolle/tile.cpp.o.d"
  "/root/repo/src/chambolle/tiled_solver.cpp" "src/CMakeFiles/chb_chambolle.dir/chambolle/tiled_solver.cpp.o" "gcc" "src/CMakeFiles/chb_chambolle.dir/chambolle/tiled_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chb_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_fixedpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
