# Empty dependencies file for chb_chambolle.
# This may be replaced when dependencies are built.
