file(REMOVE_RECURSE
  "libchb_chambolle.a"
)
