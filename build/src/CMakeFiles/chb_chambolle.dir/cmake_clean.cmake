file(REMOVE_RECURSE
  "CMakeFiles/chb_chambolle.dir/chambolle/adaptive.cpp.o"
  "CMakeFiles/chb_chambolle.dir/chambolle/adaptive.cpp.o.d"
  "CMakeFiles/chb_chambolle.dir/chambolle/chambolle_pock.cpp.o"
  "CMakeFiles/chb_chambolle.dir/chambolle/chambolle_pock.cpp.o.d"
  "CMakeFiles/chb_chambolle.dir/chambolle/dependency.cpp.o"
  "CMakeFiles/chb_chambolle.dir/chambolle/dependency.cpp.o.d"
  "CMakeFiles/chb_chambolle.dir/chambolle/energy.cpp.o"
  "CMakeFiles/chb_chambolle.dir/chambolle/energy.cpp.o.d"
  "CMakeFiles/chb_chambolle.dir/chambolle/fixed_solver.cpp.o"
  "CMakeFiles/chb_chambolle.dir/chambolle/fixed_solver.cpp.o.d"
  "CMakeFiles/chb_chambolle.dir/chambolle/merged.cpp.o"
  "CMakeFiles/chb_chambolle.dir/chambolle/merged.cpp.o.d"
  "CMakeFiles/chb_chambolle.dir/chambolle/row_parallel.cpp.o"
  "CMakeFiles/chb_chambolle.dir/chambolle/row_parallel.cpp.o.d"
  "CMakeFiles/chb_chambolle.dir/chambolle/solver.cpp.o"
  "CMakeFiles/chb_chambolle.dir/chambolle/solver.cpp.o.d"
  "CMakeFiles/chb_chambolle.dir/chambolle/tile.cpp.o"
  "CMakeFiles/chb_chambolle.dir/chambolle/tile.cpp.o.d"
  "CMakeFiles/chb_chambolle.dir/chambolle/tiled_solver.cpp.o"
  "CMakeFiles/chb_chambolle.dir/chambolle/tiled_solver.cpp.o.d"
  "libchb_chambolle.a"
  "libchb_chambolle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chb_chambolle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
