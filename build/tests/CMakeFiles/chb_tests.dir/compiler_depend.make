# Empty compiler generated dependencies file for chb_tests.
# This may be replaced when dependencies are built.
