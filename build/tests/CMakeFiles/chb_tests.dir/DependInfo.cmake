
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accel_backend_test.cpp" "tests/CMakeFiles/chb_tests.dir/accel_backend_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/accel_backend_test.cpp.o.d"
  "/root/repo/tests/acceptance_test.cpp" "tests/CMakeFiles/chb_tests.dir/acceptance_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/acceptance_test.cpp.o.d"
  "/root/repo/tests/adaptive_test.cpp" "tests/CMakeFiles/chb_tests.dir/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/adaptive_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/chb_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/block_matching_test.cpp" "tests/CMakeFiles/chb_tests.dir/block_matching_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/block_matching_test.cpp.o.d"
  "/root/repo/tests/chambolle_pock_test.cpp" "tests/CMakeFiles/chb_tests.dir/chambolle_pock_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/chambolle_pock_test.cpp.o.d"
  "/root/repo/tests/chambolle_solver_test.cpp" "tests/CMakeFiles/chb_tests.dir/chambolle_solver_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/chambolle_solver_test.cpp.o.d"
  "/root/repo/tests/common_utils_test.cpp" "tests/CMakeFiles/chb_tests.dir/common_utils_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/common_utils_test.cpp.o.d"
  "/root/repo/tests/consistency_test.cpp" "tests/CMakeFiles/chb_tests.dir/consistency_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/consistency_test.cpp.o.d"
  "/root/repo/tests/dependency_test.cpp" "tests/CMakeFiles/chb_tests.dir/dependency_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/dependency_test.cpp.o.d"
  "/root/repo/tests/diff_ops_test.cpp" "tests/CMakeFiles/chb_tests.dir/diff_ops_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/diff_ops_test.cpp.o.d"
  "/root/repo/tests/energy_test.cpp" "tests/CMakeFiles/chb_tests.dir/energy_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/energy_test.cpp.o.d"
  "/root/repo/tests/fixed_solver_test.cpp" "tests/CMakeFiles/chb_tests.dir/fixed_solver_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/fixed_solver_test.cpp.o.d"
  "/root/repo/tests/fixed_threshold_test.cpp" "tests/CMakeFiles/chb_tests.dir/fixed_threshold_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/fixed_threshold_test.cpp.o.d"
  "/root/repo/tests/fixed_type_test.cpp" "tests/CMakeFiles/chb_tests.dir/fixed_type_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/fixed_type_test.cpp.o.d"
  "/root/repo/tests/flo_io_test.cpp" "tests/CMakeFiles/chb_tests.dir/flo_io_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/flo_io_test.cpp.o.d"
  "/root/repo/tests/flow_color_test.cpp" "tests/CMakeFiles/chb_tests.dir/flow_color_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/flow_color_test.cpp.o.d"
  "/root/repo/tests/flow_eval_test.cpp" "tests/CMakeFiles/chb_tests.dir/flow_eval_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/flow_eval_test.cpp.o.d"
  "/root/repo/tests/horn_schunck_test.cpp" "tests/CMakeFiles/chb_tests.dir/horn_schunck_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/horn_schunck_test.cpp.o.d"
  "/root/repo/tests/hw_accelerator_test.cpp" "tests/CMakeFiles/chb_tests.dir/hw_accelerator_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/hw_accelerator_test.cpp.o.d"
  "/root/repo/tests/hw_bram_test.cpp" "tests/CMakeFiles/chb_tests.dir/hw_bram_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/hw_bram_test.cpp.o.d"
  "/root/repo/tests/hw_control_unit_test.cpp" "tests/CMakeFiles/chb_tests.dir/hw_control_unit_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/hw_control_unit_test.cpp.o.d"
  "/root/repo/tests/hw_datasheet_test.cpp" "tests/CMakeFiles/chb_tests.dir/hw_datasheet_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/hw_datasheet_test.cpp.o.d"
  "/root/repo/tests/hw_dram_test.cpp" "tests/CMakeFiles/chb_tests.dir/hw_dram_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/hw_dram_test.cpp.o.d"
  "/root/repo/tests/hw_dse_test.cpp" "tests/CMakeFiles/chb_tests.dir/hw_dse_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/hw_dse_test.cpp.o.d"
  "/root/repo/tests/hw_fuzz_test.cpp" "tests/CMakeFiles/chb_tests.dir/hw_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/hw_fuzz_test.cpp.o.d"
  "/root/repo/tests/hw_pe_array_test.cpp" "tests/CMakeFiles/chb_tests.dir/hw_pe_array_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/hw_pe_array_test.cpp.o.d"
  "/root/repo/tests/hw_resource_test.cpp" "tests/CMakeFiles/chb_tests.dir/hw_resource_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/hw_resource_test.cpp.o.d"
  "/root/repo/tests/hw_schedule_test.cpp" "tests/CMakeFiles/chb_tests.dir/hw_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/hw_schedule_test.cpp.o.d"
  "/root/repo/tests/hw_sliding_window_test.cpp" "tests/CMakeFiles/chb_tests.dir/hw_sliding_window_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/hw_sliding_window_test.cpp.o.d"
  "/root/repo/tests/hw_warm_start_test.cpp" "tests/CMakeFiles/chb_tests.dir/hw_warm_start_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/hw_warm_start_test.cpp.o.d"
  "/root/repo/tests/image_io_test.cpp" "tests/CMakeFiles/chb_tests.dir/image_io_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/image_io_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/chb_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/lut_sqrt_test.cpp" "tests/CMakeFiles/chb_tests.dir/lut_sqrt_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/lut_sqrt_test.cpp.o.d"
  "/root/repo/tests/matrix_test.cpp" "tests/CMakeFiles/chb_tests.dir/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/matrix_test.cpp.o.d"
  "/root/repo/tests/median_filter_test.cpp" "tests/CMakeFiles/chb_tests.dir/median_filter_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/median_filter_test.cpp.o.d"
  "/root/repo/tests/merged_test.cpp" "tests/CMakeFiles/chb_tests.dir/merged_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/merged_test.cpp.o.d"
  "/root/repo/tests/nonrestoring_sqrt_test.cpp" "tests/CMakeFiles/chb_tests.dir/nonrestoring_sqrt_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/nonrestoring_sqrt_test.cpp.o.d"
  "/root/repo/tests/packed_word_test.cpp" "tests/CMakeFiles/chb_tests.dir/packed_word_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/packed_word_test.cpp.o.d"
  "/root/repo/tests/pyramid_test.cpp" "tests/CMakeFiles/chb_tests.dir/pyramid_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/pyramid_test.cpp.o.d"
  "/root/repo/tests/qformat_test.cpp" "tests/CMakeFiles/chb_tests.dir/qformat_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/qformat_test.cpp.o.d"
  "/root/repo/tests/rolling_shutter_test.cpp" "tests/CMakeFiles/chb_tests.dir/rolling_shutter_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/rolling_shutter_test.cpp.o.d"
  "/root/repo/tests/row_parallel_test.cpp" "tests/CMakeFiles/chb_tests.dir/row_parallel_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/row_parallel_test.cpp.o.d"
  "/root/repo/tests/sequence_test.cpp" "tests/CMakeFiles/chb_tests.dir/sequence_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/sequence_test.cpp.o.d"
  "/root/repo/tests/seu_test.cpp" "tests/CMakeFiles/chb_tests.dir/seu_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/seu_test.cpp.o.d"
  "/root/repo/tests/structure_texture_test.cpp" "tests/CMakeFiles/chb_tests.dir/structure_texture_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/structure_texture_test.cpp.o.d"
  "/root/repo/tests/text_table_test.cpp" "tests/CMakeFiles/chb_tests.dir/text_table_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/text_table_test.cpp.o.d"
  "/root/repo/tests/threshold_test.cpp" "tests/CMakeFiles/chb_tests.dir/threshold_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/threshold_test.cpp.o.d"
  "/root/repo/tests/tile_test.cpp" "tests/CMakeFiles/chb_tests.dir/tile_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/tile_test.cpp.o.d"
  "/root/repo/tests/tiled_fuzz_test.cpp" "tests/CMakeFiles/chb_tests.dir/tiled_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/tiled_fuzz_test.cpp.o.d"
  "/root/repo/tests/tiled_solver_test.cpp" "tests/CMakeFiles/chb_tests.dir/tiled_solver_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/tiled_solver_test.cpp.o.d"
  "/root/repo/tests/tvl1_test.cpp" "tests/CMakeFiles/chb_tests.dir/tvl1_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/tvl1_test.cpp.o.d"
  "/root/repo/tests/validation_test.cpp" "tests/CMakeFiles/chb_tests.dir/validation_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/validation_test.cpp.o.d"
  "/root/repo/tests/verilog_export_test.cpp" "tests/CMakeFiles/chb_tests.dir/verilog_export_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/verilog_export_test.cpp.o.d"
  "/root/repo/tests/video_runner_test.cpp" "tests/CMakeFiles/chb_tests.dir/video_runner_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/video_runner_test.cpp.o.d"
  "/root/repo/tests/warp_test.cpp" "tests/CMakeFiles/chb_tests.dir/warp_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/warp_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/chb_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/chb_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_tvl1.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_chambolle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_fixedpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
