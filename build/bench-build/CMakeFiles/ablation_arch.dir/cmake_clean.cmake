file(REMOVE_RECURSE
  "../bench/ablation_arch"
  "../bench/ablation_arch.pdb"
  "CMakeFiles/ablation_arch.dir/ablation_arch.cpp.o"
  "CMakeFiles/ablation_arch.dir/ablation_arch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
