# Empty compiler generated dependencies file for quantization_error.
# This may be replaced when dependencies are built.
