file(REMOVE_RECURSE
  "../bench/quantization_error"
  "../bench/quantization_error.pdb"
  "CMakeFiles/quantization_error.dir/quantization_error.cpp.o"
  "CMakeFiles/quantization_error.dir/quantization_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantization_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
