# Empty dependencies file for flow_quality.
# This may be replaced when dependencies are built.
