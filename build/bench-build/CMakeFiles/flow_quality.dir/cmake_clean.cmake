file(REMOVE_RECURSE
  "../bench/flow_quality"
  "../bench/flow_quality.pdb"
  "CMakeFiles/flow_quality.dir/flow_quality.cpp.o"
  "CMakeFiles/flow_quality.dir/flow_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
