file(REMOVE_RECURSE
  "../bench/sqrt_lut"
  "../bench/sqrt_lut.pdb"
  "CMakeFiles/sqrt_lut.dir/sqrt_lut.cpp.o"
  "CMakeFiles/sqrt_lut.dir/sqrt_lut.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqrt_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
