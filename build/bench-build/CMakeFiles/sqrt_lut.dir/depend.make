# Empty dependencies file for sqrt_lut.
# This may be replaced when dependencies are built.
