file(REMOVE_RECURSE
  "../bench/fig1_dependency"
  "../bench/fig1_dependency.pdb"
  "CMakeFiles/fig1_dependency.dir/fig1_dependency.cpp.o"
  "CMakeFiles/fig1_dependency.dir/fig1_dependency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_dependency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
