# Empty compiler generated dependencies file for fig1_dependency.
# This may be replaced when dependencies are built.
