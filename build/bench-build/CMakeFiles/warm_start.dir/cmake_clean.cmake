file(REMOVE_RECURSE
  "../bench/warm_start"
  "../bench/warm_start.pdb"
  "CMakeFiles/warm_start.dir/warm_start.cpp.o"
  "CMakeFiles/warm_start.dir/warm_start.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warm_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
