# Empty compiler generated dependencies file for micro_chambolle.
# This may be replaced when dependencies are built.
