file(REMOVE_RECURSE
  "../bench/micro_chambolle"
  "../bench/micro_chambolle.pdb"
  "CMakeFiles/micro_chambolle.dir/micro_chambolle.cpp.o"
  "CMakeFiles/micro_chambolle.dir/micro_chambolle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_chambolle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
