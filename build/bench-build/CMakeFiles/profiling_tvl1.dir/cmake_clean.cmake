file(REMOVE_RECURSE
  "../bench/profiling_tvl1"
  "../bench/profiling_tvl1.pdb"
  "CMakeFiles/profiling_tvl1.dir/profiling_tvl1.cpp.o"
  "CMakeFiles/profiling_tvl1.dir/profiling_tvl1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiling_tvl1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
