# Empty dependencies file for profiling_tvl1.
# This may be replaced when dependencies are built.
