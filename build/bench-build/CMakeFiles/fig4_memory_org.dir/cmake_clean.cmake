file(REMOVE_RECURSE
  "../bench/fig4_memory_org"
  "../bench/fig4_memory_org.pdb"
  "CMakeFiles/fig4_memory_org.dir/fig4_memory_org.cpp.o"
  "CMakeFiles/fig4_memory_org.dir/fig4_memory_org.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_memory_org.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
