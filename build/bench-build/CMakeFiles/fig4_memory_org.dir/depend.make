# Empty dependencies file for fig4_memory_org.
# This may be replaced when dependencies are built.
