file(REMOVE_RECURSE
  "../bench/scaling_resolution"
  "../bench/scaling_resolution.pdb"
  "CMakeFiles/scaling_resolution.dir/scaling_resolution.cpp.o"
  "CMakeFiles/scaling_resolution.dir/scaling_resolution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
