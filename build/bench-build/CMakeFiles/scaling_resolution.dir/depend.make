# Empty dependencies file for scaling_resolution.
# This may be replaced when dependencies are built.
