# Empty dependencies file for seu_resilience.
# This may be replaced when dependencies are built.
