file(REMOVE_RECURSE
  "../bench/seu_resilience"
  "../bench/seu_resilience.pdb"
  "CMakeFiles/seu_resilience.dir/seu_resilience.cpp.o"
  "CMakeFiles/seu_resilience.dir/seu_resilience.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seu_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
