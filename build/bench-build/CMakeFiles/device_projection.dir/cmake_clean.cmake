file(REMOVE_RECURSE
  "../bench/device_projection"
  "../bench/device_projection.pdb"
  "CMakeFiles/device_projection.dir/device_projection.cpp.o"
  "CMakeFiles/device_projection.dir/device_projection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
