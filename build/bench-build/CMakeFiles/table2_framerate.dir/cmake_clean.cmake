file(REMOVE_RECURSE
  "../bench/table2_framerate"
  "../bench/table2_framerate.pdb"
  "CMakeFiles/table2_framerate.dir/table2_framerate.cpp.o"
  "CMakeFiles/table2_framerate.dir/table2_framerate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_framerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
