# Empty compiler generated dependencies file for table2_framerate.
# This may be replaced when dependencies are built.
