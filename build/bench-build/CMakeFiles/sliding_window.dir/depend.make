# Empty dependencies file for sliding_window.
# This may be replaced when dependencies are built.
