file(REMOVE_RECURSE
  "../bench/sliding_window"
  "../bench/sliding_window.pdb"
  "CMakeFiles/sliding_window.dir/sliding_window.cpp.o"
  "CMakeFiles/sliding_window.dir/sliding_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliding_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
