file(REMOVE_RECURSE
  "CMakeFiles/flow_cli.dir/flow_cli.cpp.o"
  "CMakeFiles/flow_cli.dir/flow_cli.cpp.o.d"
  "flow_cli"
  "flow_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
