
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hw_accelerator.cpp" "examples/CMakeFiles/hw_accelerator.dir/hw_accelerator.cpp.o" "gcc" "examples/CMakeFiles/hw_accelerator.dir/hw_accelerator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_tvl1.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_chambolle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_fixedpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
