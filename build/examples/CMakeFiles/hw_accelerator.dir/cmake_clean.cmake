file(REMOVE_RECURSE
  "CMakeFiles/hw_accelerator.dir/hw_accelerator.cpp.o"
  "CMakeFiles/hw_accelerator.dir/hw_accelerator.cpp.o.d"
  "hw_accelerator"
  "hw_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
