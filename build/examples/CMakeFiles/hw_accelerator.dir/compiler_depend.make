# Empty compiler generated dependencies file for hw_accelerator.
# This may be replaced when dependencies are built.
