file(REMOVE_RECURSE
  "CMakeFiles/rolling_shutter_correction.dir/rolling_shutter_correction.cpp.o"
  "CMakeFiles/rolling_shutter_correction.dir/rolling_shutter_correction.cpp.o.d"
  "rolling_shutter_correction"
  "rolling_shutter_correction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rolling_shutter_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
