# Empty compiler generated dependencies file for rolling_shutter_correction.
# This may be replaced when dependencies are built.
