# Empty dependencies file for optical_flow_demo.
# This may be replaced when dependencies are built.
