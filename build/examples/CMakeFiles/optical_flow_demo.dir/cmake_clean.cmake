file(REMOVE_RECURSE
  "CMakeFiles/optical_flow_demo.dir/optical_flow_demo.cpp.o"
  "CMakeFiles/optical_flow_demo.dir/optical_flow_demo.cpp.o.d"
  "optical_flow_demo"
  "optical_flow_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optical_flow_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
