# Empty compiler generated dependencies file for rof_denoise.
# This may be replaced when dependencies are built.
