file(REMOVE_RECURSE
  "CMakeFiles/rof_denoise.dir/rof_denoise.cpp.o"
  "CMakeFiles/rof_denoise.dir/rof_denoise.cpp.o.d"
  "rof_denoise"
  "rof_denoise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rof_denoise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
