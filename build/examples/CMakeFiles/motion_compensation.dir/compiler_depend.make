# Empty compiler generated dependencies file for motion_compensation.
# This may be replaced when dependencies are built.
