file(REMOVE_RECURSE
  "CMakeFiles/motion_compensation.dir/motion_compensation.cpp.o"
  "CMakeFiles/motion_compensation.dir/motion_compensation.cpp.o.d"
  "motion_compensation"
  "motion_compensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motion_compensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
